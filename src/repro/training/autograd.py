"""Minimal reverse-mode automatic differentiation over NumPy arrays.

Just enough machinery to train the tiny transformer language models used by
the accuracy experiments: a tape-based :class:`Tensor`, broadcasting-aware
elementwise ops, (batched) matmul, embedding lookup, the normalisation and
activation functions the models need, a fused causal self-attention primitive
and a fused softmax cross-entropy loss.

Design notes
------------
* Forward values are plain ``numpy`` arrays in float32; gradients are
  accumulated in float32 as well.
* Each primitive appends a closure to the tape via the ``parents`` /
  ``backward_fn`` arguments of the output tensor; ``Tensor.backward`` runs a
  topological sort and calls the closures in reverse order.
* Gradients flow only into tensors with ``requires_grad=True`` (parameters
  and anything computed from them).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) or any(p.requires_grad for p in parents)
        self._parents = tuple(parents)
        self._backward_fn = backward_fn

    # Basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the same data with no history."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # Gradient machinery -----------------------------------------------------

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (must be scalar unless ``grad`` given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # Operator sugar -----------------------------------------------------------

    def __add__(self, other):
        return add(self, other)

    def __radd__(self, other):
        return add(self, other)

    def __mul__(self, other):
        return mul(self, other)

    def __rmul__(self, other):
        return mul(self, other)

    def __sub__(self, other):
        return add(self, mul(other, -1.0))

    def __neg__(self):
        return mul(self, -1.0)

    def __matmul__(self, other):
        return matmul(self, other)


def as_tensor(value) -> Tensor:
    """Wrap a value in a (constant) :class:`Tensor` if it is not one already."""
    return value if isinstance(value, Tensor) else Tensor(value)


# --- elementwise / structural primitives --------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad, b.shape))

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.shape))

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 2-D and batched operands via ``numpy.matmul``."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            grad_a = grad @ np.swapaxes(b.data, -1, -2)
            a.accumulate_grad(_unbroadcast(grad_a, a.shape))
        if b.requires_grad:
            grad_b = np.swapaxes(a.data, -1, -2) @ grad
            b.accumulate_grad(_unbroadcast(grad_b, b.shape))

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def reshape(a, shape: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(a.shape))

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def transpose(a, axes: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    inverse = np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(np.transpose(grad, inverse))

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            grad_weight = np.zeros_like(weight.data)
            np.add.at(grad_weight, indices.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
            weight.accumulate_grad(grad_weight)

    return Tensor(out_data, parents=(weight,), backward_fn=backward)


# --- normalisation and activations ---------------------------------------------


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    x, weight = as_tensor(x), as_tensor(weight)
    x64 = x.data.astype(np.float64)
    mean_sq = np.mean(x64 * x64, axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(mean_sq + eps)
    normalized = x64 * inv_rms
    out_data = (normalized * weight.data).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        grad64 = grad.astype(np.float64)
        d = x.shape[-1]
        if weight.requires_grad:
            grad_weight = (grad64 * normalized).reshape(-1, d).sum(axis=0)
            weight.accumulate_grad(grad_weight.astype(np.float32))
        if x.requires_grad:
            grad_norm = grad64 * weight.data
            dot = np.sum(grad_norm * x64, axis=-1, keepdims=True)
            grad_x = inv_rms * grad_norm - (x64 * inv_rms**3) * dot / d
            x.accumulate_grad(grad_x.astype(np.float32))

    return Tensor(out_data, parents=(x, weight), backward_fn=backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    x64 = x.data.astype(np.float64)
    mean = x64.mean(axis=-1, keepdims=True)
    var = x64.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = (x64 - mean) * inv_std
    out_data = (normalized * weight.data + bias.data).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        grad64 = grad.astype(np.float64)
        d = x.shape[-1]
        if weight.requires_grad:
            weight.accumulate_grad(
                (grad64 * normalized).reshape(-1, d).sum(axis=0).astype(np.float32)
            )
        if bias.requires_grad:
            bias.accumulate_grad(grad64.reshape(-1, d).sum(axis=0).astype(np.float32))
        if x.requires_grad:
            grad_norm = grad64 * weight.data
            grad_x = (
                grad_norm
                - grad_norm.mean(axis=-1, keepdims=True)
                - normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
            ) * inv_std
            x.accumulate_grad(grad_x.astype(np.float32))

    return Tensor(out_data, parents=(x, weight, bias), backward_fn=backward)


def silu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    sigmoid = 1.0 / (1.0 + np.exp(-x.data.astype(np.float64)))
    out_data = (x.data * sigmoid).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            derivative = sigmoid * (1.0 + x.data * (1.0 - sigmoid))
            x.accumulate_grad((grad * derivative).astype(np.float32))

    return Tensor(out_data, parents=(x,), backward_fn=backward)


def gelu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    x64 = x.data.astype(np.float64)
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x64 + 0.044715 * x64**3)
    tanh = np.tanh(inner)
    out_data = (0.5 * x64 * (1.0 + tanh)).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            sech2 = 1.0 - tanh**2
            derivative = 0.5 * (1.0 + tanh) + 0.5 * x64 * sech2 * c * (1.0 + 3 * 0.044715 * x64**2)
            x.accumulate_grad((grad * derivative).astype(np.float32))

    return Tensor(out_data, parents=(x,), backward_fn=backward)


# --- fused attention and loss ----------------------------------------------------


def rope_rotate(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Apply a rotary rotation (constants ``cos``/``sin`` broadcast over heads).

    The rotation is orthogonal, so the backward pass applies the inverse
    rotation (same cosines, negated sines) to the incoming gradient.
    """
    x = as_tensor(x)
    half = x.shape[-1] // 2
    x1, x2 = x.data[..., :half], x.data[..., half:]
    out_data = np.empty_like(x.data)
    out_data[..., :half] = x1 * cos - x2 * sin
    out_data[..., half:] = x2 * cos + x1 * sin

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g1, g2 = grad[..., :half], grad[..., half:]
            grad_x = np.empty_like(grad)
            grad_x[..., :half] = g1 * cos + g2 * sin
            grad_x[..., half:] = g2 * cos - g1 * sin
            x.accumulate_grad(grad_x)

    return Tensor(out_data, parents=(x,), backward_fn=backward)


def causal_self_attention(
    q: Tensor, k: Tensor, v: Tensor, scale: float, bias: Optional[np.ndarray] = None
) -> Tensor:
    """Fused causal attention over ``(batch, tokens, heads, head_dim)`` tensors.

    ``bias`` is an optional constant additive score bias of shape
    ``(heads, tokens, tokens)`` (used for ALiBi).  Returns a tensor with the
    same shape as ``q``.
    """
    q, k, v = as_tensor(q), as_tensor(k), as_tensor(v)
    batch, tokens, heads, head_dim = q.shape
    scores = np.einsum("bqhd,bkhd->bhqk", q.data, k.data) * scale
    if bias is not None:
        scores = scores + bias[None, ...]
    mask = np.triu(np.full((tokens, tokens), -1e30, dtype=np.float32), k=1)
    scores = scores + mask[None, None, :, :]
    scores64 = scores.astype(np.float64)
    scores64 -= scores64.max(axis=-1, keepdims=True)
    exp = np.exp(scores64)
    probs = (exp / exp.sum(axis=-1, keepdims=True)).astype(np.float32)
    out_data = np.einsum("bhqk,bkhd->bqhd", probs, v.data)

    def backward(grad: np.ndarray) -> None:
        grad_probs = np.einsum("bqhd,bkhd->bhqk", grad, v.data)
        if v.requires_grad:
            v.accumulate_grad(np.einsum("bhqk,bqhd->bkhd", probs, grad))
        # Softmax backward.
        dot = np.sum(grad_probs * probs, axis=-1, keepdims=True)
        grad_scores = probs * (grad_probs - dot)
        if q.requires_grad:
            q.accumulate_grad(np.einsum("bhqk,bkhd->bqhd", grad_scores, k.data) * scale)
        if k.requires_grad:
            k.accumulate_grad(np.einsum("bhqk,bqhd->bkhd", grad_scores, q.data) * scale)

    return Tensor(out_data, parents=(q, k, v), backward_fn=backward)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean next-token cross-entropy over ``(n, vocab)`` logits (fused backward)."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    if logits.ndim != 2 or logits.shape[0] != targets.shape[0]:
        raise ValueError(
            f"logits shape {logits.shape} incompatible with targets shape {targets.shape}"
        )
    logits64 = logits.data.astype(np.float64)
    logits64 -= logits64.max(axis=-1, keepdims=True)
    log_probs = logits64 - np.log(np.exp(logits64).sum(axis=-1, keepdims=True))
    n = targets.shape[0]
    loss = -log_probs[np.arange(n), targets].mean()

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            probs = np.exp(log_probs)
            probs[np.arange(n), targets] -= 1.0
            logits.accumulate_grad((float(grad) * probs / n).astype(np.float32))

    return Tensor(np.asarray(loss, dtype=np.float32), parents=(logits,), backward_fn=backward)
