"""Trainable transformer language model built on the tiny autograd engine.

The architecture mirrors :class:`repro.models.transformer.TransformerLM`
(pre-norm blocks, RoPE/ALiBi/absolute positions, SwiGLU or GELU MLPs, tied
embeddings) so that trained weights can be exported one-to-one into the
inference substrate and then evaluated under any KV-cache scheme.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.models.attention import AttentionBlock
from repro.models.linear import Embedding, Linear
from repro.models.positional import RotaryEmbedding, alibi_bias, alibi_slopes
from repro.models.transformer import FeedForward, Norm, TransformerBlock, TransformerLM
from repro.models.weights import OutlierSpec
from repro.training import autograd as ag
from repro.training.autograd import Tensor
from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


def _parameter(rng: np.random.Generator, shape: tuple[int, ...], std: float) -> Tensor:
    return Tensor(rng.normal(0.0, std, size=shape).astype(np.float32), requires_grad=True)


def _ones(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=True)


def _zeros(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)


class TrainableTransformerLM:
    """Decoder-only LM whose parameters are autograd tensors.

    Limitations compared to the inference model (documented, not silent):
    grouped-query attention is not supported for training (``n_kv_heads`` must
    equal ``n_heads``); everything else in :class:`ModelConfig` is honoured.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: SeedLike = 0,
        outlier_spec: Optional[OutlierSpec] = None,
    ) -> None:
        require(
            config.kv_heads == config.n_heads,
            "training does not support grouped-query attention (set n_kv_heads=None)",
        )
        self.config = config
        # Real LLMs develop key-channel outliers during pretraining (Fig. 2/3);
        # short synthetic training cannot reproduce that emergence, so the key
        # projection starts from the same outlier-structured initialisation the
        # inference models use and training proceeds from there.
        spec = outlier_spec or OutlierSpec()
        rng = get_rng(seed)
        d, v = config.d_model, config.vocab_size
        proj_std = 1.0 / np.sqrt(d)
        residual_std = proj_std / np.sqrt(2.0 * config.n_layers)

        self.params: dict[str, Tensor] = {}
        self.params["token_embedding"] = _parameter(rng, (v, d), 0.05)
        if config.positional == "absolute":
            self.params["position_embedding"] = _parameter(rng, (config.max_seq_len, d), 0.02)
        for layer in range(config.n_layers):
            prefix = f"layer{layer}."
            self.params[prefix + "wq"] = _parameter(rng, (d, d), proj_std)
            wk = _parameter(rng, (d, d), proj_std)
            n_outlier = int(round(spec.key_channel_fraction * d))
            if n_outlier > 0 and spec.key_channel_scale != 1.0:
                outlier_channels = rng.choice(d, size=n_outlier, replace=False)
                wk.data[:, outlier_channels] *= spec.key_channel_scale
            self.params[prefix + "wk"] = wk
            wv = _parameter(rng, (d, d), proj_std)
            if spec.value_element_fraction > 0 and spec.value_element_scale != 1.0:
                mask = rng.random(wv.data.shape) < spec.value_element_fraction
                wv.data[mask] *= spec.value_element_scale
            self.params[prefix + "wv"] = wv
            self.params[prefix + "wo"] = _parameter(rng, (d, d), residual_std)
            self.params[prefix + "attn_norm.weight"] = _ones((d,))
            self.params[prefix + "ffn_norm.weight"] = _ones((d,))
            if config.norm == "layernorm":
                self.params[prefix + "attn_norm.bias"] = _zeros((d,))
                self.params[prefix + "ffn_norm.bias"] = _zeros((d,))
            ffn_out_std = 1.0 / np.sqrt(config.ffn_dim) / np.sqrt(2.0 * config.n_layers)
            self.params[prefix + "w_in"] = _parameter(rng, (d, config.ffn_dim), proj_std)
            self.params[prefix + "w_out"] = _parameter(rng, (config.ffn_dim, d), ffn_out_std)
            if config.activation == "silu":
                self.params[prefix + "w_gate"] = _parameter(rng, (d, config.ffn_dim), proj_std)
        self.params["final_norm.weight"] = _ones((d,))
        if config.norm == "layernorm":
            self.params["final_norm.bias"] = _zeros((d,))

        # Positional constants (not trained).
        self._rope: Optional[RotaryEmbedding] = None
        self._alibi_slopes: Optional[np.ndarray] = None
        if config.positional in ("rope", "yarn"):
            self._rope = RotaryEmbedding(
                config.head_dim,
                config.max_seq_len,
                theta=config.rope_theta,
                scaling_factor=config.rope_scaling_factor if config.positional == "yarn" else 1.0,
                original_max_seq_len=config.original_max_seq_len or config.max_seq_len,
            )
        elif config.positional == "alibi":
            self._alibi_slopes = alibi_slopes(config.n_heads)

    # Parameter access ----------------------------------------------------------

    def parameters(self) -> dict[str, Tensor]:
        """Name → parameter tensor mapping (shared with the optimizer)."""
        return self.params

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.params.values()))

    def zero_grad(self) -> None:
        for param in self.params.values():
            param.zero_grad()

    # Forward -------------------------------------------------------------------

    def _norm(self, x: Tensor, name: str) -> Tensor:
        if self.config.norm == "rmsnorm":
            return ag.rms_norm(x, self.params[name + ".weight"], eps=self.config.norm_eps)
        return ag.layer_norm(
            x,
            self.params[name + ".weight"],
            self.params[name + ".bias"],
            eps=self.config.norm_eps,
        )

    def _rope_constants(self, n_tokens: int) -> tuple[np.ndarray, np.ndarray]:
        positions = np.arange(n_tokens)
        cos = self._rope._cos[positions][None, :, None, :]  # (1, T, 1, half)
        sin = self._rope._sin[positions][None, :, None, :]
        return cos, sin

    def forward(self, token_batch: np.ndarray) -> Tensor:
        """Logits for a batch of token windows, shape ``(batch, tokens, vocab)``."""
        token_batch = np.asarray(token_batch, dtype=np.int64)
        require(token_batch.ndim == 2, "token_batch must be 2-D (batch, tokens)")
        batch, tokens = token_batch.shape
        config = self.config
        h = ag.embedding(self.params["token_embedding"], token_batch)
        if config.positional == "absolute":
            h = ag.add(h, ag.embedding(self.params["position_embedding"], np.arange(tokens)))

        scale = 1.0 / np.sqrt(config.head_dim)
        if self._rope is not None:
            scale *= self._rope.attention_scale
        bias = None
        if self._alibi_slopes is not None:
            bias = alibi_bias(self._alibi_slopes, np.arange(tokens), np.arange(tokens))

        for layer in range(config.n_layers):
            prefix = f"layer{layer}."
            x = self._norm(h, prefix + "attn_norm")
            q = ag.reshape(
                ag.matmul(x, self.params[prefix + "wq"]),
                (batch, tokens, config.n_heads, config.head_dim),
            )
            k = ag.reshape(
                ag.matmul(x, self.params[prefix + "wk"]),
                (batch, tokens, config.n_heads, config.head_dim),
            )
            v = ag.reshape(
                ag.matmul(x, self.params[prefix + "wv"]),
                (batch, tokens, config.n_heads, config.head_dim),
            )
            if self._rope is not None:
                cos, sin = self._rope_constants(tokens)
                q = ag.rope_rotate(q, cos, sin)
                k = ag.rope_rotate(k, cos, sin)
            context = ag.causal_self_attention(q, k, v, scale, bias=bias)
            context = ag.reshape(context, (batch, tokens, config.d_model))
            h = ag.add(h, ag.matmul(context, self.params[prefix + "wo"]))

            x = self._norm(h, prefix + "ffn_norm")
            if config.activation == "silu":
                gated = ag.mul(
                    ag.silu(ag.matmul(x, self.params[prefix + "w_gate"])),
                    ag.matmul(x, self.params[prefix + "w_in"]),
                )
            else:
                gated = ag.gelu(ag.matmul(x, self.params[prefix + "w_in"]))
            h = ag.add(h, ag.matmul(gated, self.params[prefix + "w_out"]))

        h = self._norm(h, "final_norm")
        logits = ag.matmul(h, ag.transpose(self.params["token_embedding"], (1, 0)))
        return logits

    def loss(self, inputs: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean next-token cross entropy for teacher-forced windows."""
        logits = self.forward(inputs)
        flat = ag.reshape(logits, (-1, self.config.vocab_size))
        return ag.softmax_cross_entropy(flat, np.asarray(targets).reshape(-1))

    # Export --------------------------------------------------------------------

    def to_inference_model(self) -> TransformerLM:
        """Copy the trained weights into the inference :class:`TransformerLM`."""
        config = self.config
        token_embedding = Embedding(self.params["token_embedding"].data.copy())
        position_embedding = None
        if config.positional == "absolute":
            position_embedding = Embedding(self.params["position_embedding"].data.copy())
        rope = self._rope
        head_slopes = self._alibi_slopes
        blocks = []
        for layer in range(config.n_layers):
            prefix = f"layer{layer}."
            attention = AttentionBlock(
                config,
                wq=Linear(self.params[prefix + "wq"].data.copy()),
                wk=Linear(self.params[prefix + "wk"].data.copy()),
                wv=Linear(self.params[prefix + "wv"].data.copy()),
                wo=Linear(self.params[prefix + "wo"].data.copy()),
                rope=rope,
                alibi_head_slopes=head_slopes,
            )
            if config.activation == "silu":
                feed_forward = FeedForward(
                    "silu",
                    w_in=Linear(self.params[prefix + "w_in"].data.copy()),
                    w_out=Linear(self.params[prefix + "w_out"].data.copy()),
                    w_gate=Linear(self.params[prefix + "w_gate"].data.copy()),
                )
            else:
                feed_forward = FeedForward(
                    "gelu",
                    w_in=Linear(self.params[prefix + "w_in"].data.copy()),
                    w_out=Linear(self.params[prefix + "w_out"].data.copy()),
                )
            blocks.append(
                TransformerBlock(
                    attention,
                    feed_forward,
                    attention_norm=self._export_norm(prefix + "attn_norm"),
                    ffn_norm=self._export_norm(prefix + "ffn_norm"),
                )
            )
        return TransformerLM(
            config,
            token_embedding,
            blocks,
            final_norm=self._export_norm("final_norm"),
            position_embedding=position_embedding,
        )

    def _export_norm(self, name: str) -> Norm:
        bias = None
        if self.config.norm == "layernorm":
            bias = self.params[name + ".bias"].data.copy()
        return Norm(
            self.config.norm,
            self.params[name + ".weight"].data.copy(),
            bias,
            eps=self.config.norm_eps,
        )
