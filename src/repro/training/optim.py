"""Optimizers and gradient utilities for the tiny trainer."""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.training.autograd import Tensor
from repro.utils.validation import require


def global_grad_norm(params: Mapping[str, Tensor]) -> float:
    """L2 norm of all gradients concatenated (0 when no gradients exist)."""
    total = 0.0
    for param in params.values():
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return math.sqrt(total)


def clip_grad_norm(params: Mapping[str, Tensor], max_norm: float) -> float:
    """Scale all gradients so their global norm is at most ``max_norm``."""
    require(max_norm > 0, "max_norm must be positive")
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params.values():
            if param.grad is not None:
                param.grad *= scale
    return norm


def cosine_lr(step: int, total_steps: int, base_lr: float, warmup_steps: int = 0, min_lr_ratio: float = 0.1) -> float:
    """Warmup-then-cosine learning-rate schedule."""
    require(total_steps >= 1, "total_steps must be >= 1")
    if warmup_steps > 0 and step < warmup_steps:
        return base_lr * (step + 1) / warmup_steps
    progress = (step - warmup_steps) / max(total_steps - warmup_steps, 1)
    progress = min(max(progress, 0.0), 1.0)
    cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
    return base_lr * (min_lr_ratio + (1.0 - min_lr_ratio) * cosine)


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Mapping[str, Tensor], lr: float = 0.1, momentum: float = 0.0) -> None:
        require(lr > 0, "lr must be positive")
        self.params = dict(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = {name: np.zeros_like(p.data) for name, p in self.params.items()}

    def step(self, lr: float | None = None) -> None:
        lr = self.lr if lr is None else lr
        for name, param in self.params.items():
            if param.grad is None:
                continue
            if self.momentum > 0:
                self._velocity[name] = self.momentum * self._velocity[name] + param.grad
                update = self._velocity[name]
            else:
                update = param.grad
            param.data -= lr * update

    def zero_grad(self) -> None:
        for param in self.params.values():
            param.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) over a named parameter mapping."""

    def __init__(
        self,
        params: Mapping[str, Tensor],
        lr: float = 3e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        require(lr > 0, "lr must be positive")
        require(0 <= betas[0] < 1 and 0 <= betas[1] < 1, "betas must be in [0, 1)")
        self.params = dict(params)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = {name: np.zeros_like(p.data) for name, p in self.params.items()}
        self._v = {name: np.zeros_like(p.data) for name, p in self.params.items()}

    def step(self, lr: float | None = None) -> None:
        """Apply one update using the gradients currently stored on the params."""
        lr = self.lr if lr is None else lr
        self._step_count += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1**self._step_count
        bias_correction2 = 1.0 - beta2**self._step_count
        for name, param in self.params.items():
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            self._m[name] = beta1 * self._m[name] + (1 - beta1) * grad
            self._v[name] = beta2 * self._v[name] + (1 - beta2) * grad * grad
            m_hat = self._m[name] / bias_correction1
            v_hat = self._v[name] / bias_correction2
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params.values():
            param.zero_grad()
