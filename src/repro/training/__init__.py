"""Tiny NumPy training stack (autograd, optimizers, trainer, checkpoints)."""

from repro.training.autograd import Tensor
from repro.training.checkpoint import (
    cached_trained_model,
    load_model_checkpoint,
    load_state_dict,
    save_model,
    state_dict,
)
from repro.training.layers import TrainableTransformerLM
from repro.training.optim import SGD, Adam, clip_grad_norm, cosine_lr, global_grad_norm
from repro.training.trainer import (
    TrainingHistory,
    evaluate_validation_perplexity,
    sample_batch,
    train_language_model,
    train_tiny_lm,
)

__all__ = [
    "Tensor",
    "cached_trained_model",
    "load_model_checkpoint",
    "load_state_dict",
    "save_model",
    "state_dict",
    "TrainableTransformerLM",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cosine_lr",
    "global_grad_norm",
    "TrainingHistory",
    "evaluate_validation_perplexity",
    "sample_batch",
    "train_language_model",
    "train_tiny_lm",
]
