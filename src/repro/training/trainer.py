"""Language-model training loop for the tiny evaluation models.

Training serves one purpose in this reproduction: giving the accuracy
experiments (Tables II/III, Fig. 6) models whose predictions actually depend
on the context, so that KV-cache quantization error shows up as a perplexity
or task-score change the way it does for real LLMs.  A fraction of training
windows contain a literal repetition of their first half
(``induction_fraction``), which teaches the models the copy/induction
behaviour the long-context retrieval tasks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.data.corpus import load_corpus
from repro.data.longcontext import SPECIAL_TOKENS, SpecialTokens
from repro.models.config import ModelConfig
from repro.models.transformer import TransformerLM
from repro.training.layers import TrainableTransformerLM
from repro.training.optim import Adam, clip_grad_norm, cosine_lr
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, derive_seed, get_rng
from repro.utils.validation import require

logger = get_logger("training")

CorpusNames = Union[str, Sequence[str]]


@dataclass
class TrainingHistory:
    """Loss curve and evaluation results of one training run."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    final_validation_ppl: float = float("nan")

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def improved(self) -> bool:
        """Whether the smoothed loss decreased over training."""
        if len(self.losses) < 4:
            return False
        head = float(np.mean(self.losses[: max(2, len(self.losses) // 5)]))
        tail = float(np.mean(self.losses[-max(2, len(self.losses) // 5) :]))
        return tail < head


def sample_batch(
    stream: np.ndarray,
    batch_size: int,
    seq_len: int,
    rng: np.random.Generator,
    induction_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``(inputs, targets)`` windows from a token stream.

    With probability ``induction_fraction`` a window's second half repeats its
    first half, injecting copy structure the models must learn to exploit.
    """
    require(seq_len >= 4, "seq_len must be >= 4")
    require(stream.size > seq_len + 1, "stream too short for the requested seq_len")
    inputs = np.empty((batch_size, seq_len), dtype=np.int64)
    for row in range(batch_size):
        start = int(rng.integers(0, stream.size - seq_len - 1))
        window = stream[start : start + seq_len + 1].copy()
        if rng.random() < induction_fraction:
            half = (seq_len + 1) // 2
            window[half : 2 * half] = window[:half]
        inputs[row] = window[:seq_len]
        # Targets are the next token at each position.
        if row == 0:
            targets = np.empty((batch_size, seq_len), dtype=np.int64)
        targets[row] = window[1 : seq_len + 1]
    return inputs, targets


def sample_task_episode(
    stream: np.ndarray,
    seq_len: int,
    rng: np.random.Generator,
    vocab_size: int,
    specials: SpecialTokens = SPECIAL_TOKENS,
) -> np.ndarray:
    """Build one retrieval-formatted training window of ``seq_len + 1`` tokens.

    Layout: ``filler | KEY k VALUE v | filler | QUESTION k ANSWER v`` with the
    answer at the very end, using the same marker tokens as the synthetic
    LongBench tasks.  Training on a fraction of such episodes teaches the tiny
    models the "find the key in the context and copy its value" behaviour that
    the Fig. 6 evaluation requires (real LLMs acquire it during pretraining).
    """
    require(seq_len >= 32, "task episodes need seq_len >= 32")
    total = seq_len + 1
    key_len, value_len = 3, 3
    fact_len = 1 + key_len + 1 + value_len
    question_len = 1 + key_len + 1 + value_len
    filler_total = total - fact_len - question_len
    filler_before = int(rng.integers(0, filler_total + 1))
    filler_after = filler_total - filler_before

    def filler(n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0, dtype=np.int64)
        start = int(rng.integers(0, stream.size - n))
        return stream[start : start + n]

    key = rng.integers(specials.content_start, vocab_size, size=key_len)
    value = rng.integers(specials.content_start, vocab_size, size=value_len)
    window = np.concatenate(
        [
            filler(filler_before),
            [specials.key_marker],
            key,
            [specials.value_marker],
            value,
            filler(filler_after),
            [specials.question],
            key,
            [specials.answer],
            value,
        ]
    ).astype(np.int64)
    return window


def evaluate_validation_perplexity(
    model: TrainableTransformerLM,
    stream: np.ndarray,
    seq_len: int = 128,
    n_windows: int = 4,
    seed: SeedLike = 0,
) -> float:
    """Teacher-forced perplexity of the trainable model on held-out windows."""
    rng = get_rng(seed)
    losses = []
    for _ in range(n_windows):
        inputs, targets = sample_batch(stream, 1, seq_len, rng, induction_fraction=0.0)
        losses.append(float(model.loss(inputs, targets).item()))
    return float(np.exp(np.mean(losses)))


def train_language_model(
    config: ModelConfig,
    corpus_name: CorpusNames = "wikitext2-syn",
    steps: int = 200,
    batch_size: int = 8,
    seq_len: int = 128,
    learning_rate: float = 3e-3,
    induction_fraction: float = 0.25,
    task_episode_fraction: float = 0.0,
    grad_clip: float = 1.0,
    seed: SeedLike = 0,
    train_tokens: int = 65536,
    log_every: int = 50,
    outlier_spec=None,
) -> tuple[TrainableTransformerLM, TrainingHistory]:
    """Train a :class:`TrainableTransformerLM` on one or more synthetic corpora.

    ``corpus_name`` may be a single corpus or a sequence of corpora whose
    training streams are concatenated.  ``task_episode_fraction`` of the
    training rows are retrieval-formatted episodes (see
    :func:`sample_task_episode`).
    """
    require(steps >= 1, "steps must be >= 1")
    require(seq_len < config.max_seq_len, "seq_len must be below the model's max_seq_len")
    require(0.0 <= task_episode_fraction <= 1.0, "task_episode_fraction must be in [0, 1]")
    corpus_names = [corpus_name] if isinstance(corpus_name, str) else list(corpus_name)
    require(len(corpus_names) >= 1, "corpus_name must name at least one corpus")
    rng = get_rng(derive_seed(seed, "trainer"))
    per_corpus = max(train_tokens // len(corpus_names), 4096)
    stream = np.concatenate(
        [load_corpus(name, "train", n_tokens=per_corpus, seed=seed) for name in corpus_names]
    )
    stream = stream % config.vocab_size
    validation = load_corpus(corpus_names[0], "validation", n_tokens=4096, seed=seed)
    validation = validation % config.vocab_size

    model = TrainableTransformerLM(
        config, seed=derive_seed(seed, "init"), outlier_spec=outlier_spec
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    history = TrainingHistory()
    for step in range(steps):
        inputs, targets = sample_batch(
            stream, batch_size, seq_len, rng, induction_fraction=induction_fraction
        )
        if task_episode_fraction > 0.0:
            for row in range(batch_size):
                if rng.random() < task_episode_fraction:
                    window = sample_task_episode(stream, seq_len, rng, config.vocab_size)
                    inputs[row] = window[:seq_len]
                    targets[row] = window[1:]
        optimizer.zero_grad()
        loss = model.loss(inputs, targets)
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step(lr=cosine_lr(step, steps, learning_rate, warmup_steps=min(20, steps // 10)))
        history.steps.append(step)
        history.losses.append(float(loss.item()))
        history.grad_norms.append(grad_norm)
        if log_every and step % log_every == 0:
            logger.info("step %d loss %.4f grad %.2f", step, history.losses[-1], grad_norm)
    history.final_validation_ppl = evaluate_validation_perplexity(
        model, validation, seq_len=min(seq_len, 128), seed=seed
    )
    return model, history


def train_tiny_lm(
    config: ModelConfig,
    corpus_name: CorpusNames = "wikitext2-syn",
    steps: int = 200,
    seed: SeedLike = 0,
    **kwargs,
) -> tuple[TransformerLM, TrainingHistory]:
    """Train and export an inference-ready :class:`TransformerLM`."""
    trainable, history = train_language_model(
        config, corpus_name=corpus_name, steps=steps, seed=seed, **kwargs
    )
    return trainable.to_inference_model(), history
