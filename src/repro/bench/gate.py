"""Regression gate: diff a fresh suite run against a committed baseline.

The comparison is direction-aware and per-metric:

* a *gated* metric that moved in the bad direction by more than its tolerance
  (its recorded ``tolerance_pct``, else the CLI default) is a **regression**;
* a gated baseline metric (or whole case) absent from the current run is a
  **regression** — silently dropping a measurement must not pass CI;
* a current metric absent from the baseline is **informational** (new metrics
  appear whenever a PR adds coverage; the next baseline refresh adopts them);
* non-gated metrics and improvements are reported but never fail the gate;
* a case that errored in the current run is a regression outright.

Comparing a smoke run against a full-mode baseline (or vice versa) is almost
always a configuration mistake, so it is surfaced as a warning finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.bench.schema import HIGHER_IS_BETTER, Metric, SuiteResult

DEFAULT_TOLERANCE_PCT = 25.0


class Kind(Enum):
    PASS = "pass"
    IMPROVEMENT = "improvement"
    REGRESSION = "regression"
    MISSING_METRIC = "missing-metric"
    MISSING_CASE = "missing-case"
    CASE_ERROR = "case-error"
    NEW_METRIC = "new-metric"
    INFO = "info"
    WARNING = "warning"

    @property
    def fails(self) -> bool:
        return self in (
            Kind.REGRESSION,
            Kind.MISSING_METRIC,
            Kind.MISSING_CASE,
            Kind.CASE_ERROR,
        )


@dataclass(frozen=True)
class Finding:
    kind: Kind
    suite: str
    case: str
    metric: str
    message: str

    @property
    def fails(self) -> bool:
        return self.kind.fails

    def __str__(self) -> str:
        label = f"{self.suite}/{self.case}" + (f"/{self.metric}" if self.metric else "")
        return f"[{self.kind.value}] {label}: {self.message}"


def _relative_change_pct(baseline: float, current: float) -> float:
    """Signed change where positive always means 'worse-direction-agnostic'."""
    denom = abs(baseline)
    if denom < 1e-12:
        # A zero baseline admits no relative comparison; treat any nonzero
        # current value as a 100% move so the tolerance still has teeth.
        return 0.0 if abs(current) < 1e-12 else 100.0
    return 100.0 * (current - baseline) / denom


def compare_metric(
    suite: str,
    case: str,
    baseline: Metric,
    current: Metric,
    default_tolerance_pct: float,
) -> Finding:
    tolerance = baseline.tolerance_pct
    if tolerance is None:
        tolerance = default_tolerance_pct
    change_pct = _relative_change_pct(baseline.value, current.value)
    if baseline.direction == HIGHER_IS_BETTER:
        worsening_pct = -change_pct
    else:
        worsening_pct = change_pct
    unit = f" {baseline.unit}" if baseline.unit else ""
    detail = (
        f"{baseline.value:g}{unit} -> {current.value:g}{unit} "
        f"({change_pct:+.1f}%, tolerance {tolerance:g}%)"
    )
    if not baseline.gated:
        return Finding(Kind.INFO, suite, case, baseline.name, f"not gated: {detail}")
    if worsening_pct > tolerance:
        return Finding(Kind.REGRESSION, suite, case, baseline.name, f"regressed: {detail}")
    if worsening_pct < -tolerance:
        return Finding(Kind.IMPROVEMENT, suite, case, baseline.name, f"improved: {detail}")
    return Finding(Kind.PASS, suite, case, baseline.name, detail)


def compare_suites(
    baseline: SuiteResult,
    current: SuiteResult,
    *,
    default_tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> list[Finding]:
    """All findings from diffing ``current`` against ``baseline``."""
    findings: list[Finding] = []
    suite = baseline.suite
    if current.suite != baseline.suite:
        findings.append(
            Finding(
                Kind.WARNING,
                suite,
                "",
                "",
                f"comparing suite {current.suite!r} against baseline suite "
                f"{baseline.suite!r}",
            )
        )
    if current.smoke != baseline.smoke:
        findings.append(
            Finding(
                Kind.WARNING,
                suite,
                "",
                "",
                f"smoke mismatch: baseline smoke={baseline.smoke}, "
                f"current smoke={current.smoke} — numbers are not comparable "
                "at different scales",
            )
        )
    current_cases = current.cases_by_name()
    for base_case in baseline.cases:
        cur_case = current_cases.get(base_case.name)
        if cur_case is None:
            findings.append(
                Finding(
                    Kind.MISSING_CASE,
                    suite,
                    base_case.name,
                    "",
                    "case present in baseline but absent from the current run",
                )
            )
            continue
        if cur_case.error is not None:
            findings.append(
                Finding(
                    Kind.CASE_ERROR,
                    suite,
                    base_case.name,
                    "",
                    f"case failed: {cur_case.error.splitlines()[0]}",
                )
            )
            continue
        cur_metrics = cur_case.metrics_by_name()
        for base_metric in base_case.metrics:
            cur_metric = cur_metrics.get(base_metric.name)
            if cur_metric is None:
                kind = Kind.MISSING_METRIC if base_metric.gated else Kind.INFO
                findings.append(
                    Finding(
                        kind,
                        suite,
                        base_case.name,
                        base_metric.name,
                        "metric present in baseline but absent from the current run",
                    )
                )
                continue
            findings.append(
                compare_metric(
                    suite, base_case.name, base_metric, cur_metric, default_tolerance_pct
                )
            )
        for name in cur_metrics:
            if name not in {m.name for m in base_case.metrics}:
                findings.append(
                    Finding(
                        Kind.NEW_METRIC,
                        suite,
                        base_case.name,
                        name,
                        "metric absent from baseline (adopted at next "
                        "--write-baseline refresh)",
                    )
                )
    base_case_names = {case.name for case in baseline.cases}
    for name in current_cases:
        if name not in base_case_names:
            findings.append(
                Finding(
                    Kind.NEW_METRIC,
                    suite,
                    name,
                    "",
                    "case absent from baseline (adopted at next "
                    "--write-baseline refresh)",
                )
            )
    return findings


def has_failures(findings: list[Finding]) -> bool:
    return any(finding.fails for finding in findings)


def summarize(findings: list[Finding]) -> str:
    counts: dict[Kind, int] = {}
    for finding in findings:
        counts[finding.kind] = counts.get(finding.kind, 0) + 1
    parts = [f"{kind.value}={count}" for kind, count in sorted(counts.items(), key=lambda kv: kv[0].value)]
    verdict = "FAIL" if has_failures(findings) else "PASS"
    return f"gate {verdict} ({', '.join(parts) if parts else 'no findings'})"
