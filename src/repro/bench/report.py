"""Markdown rendering of ``BENCH_*.json`` documents (the ``report`` command).

Used locally to eyeball a run, and by CI to publish the smoke numbers into
the job summary and the uploaded artifact bundle.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.gate import Finding
from repro.bench.schema import CaseResult, Metric, SuiteResult


def _fmt_value(metric: Metric) -> str:
    value = metric.value
    if value == 0:
        text = "0"
    elif abs(value) >= 1000:
        text = f"{value:,.0f}"
    elif abs(value) >= 1:
        text = f"{value:.2f}"
    else:
        text = f"{value:.4g}"
    return f"{text} {metric.unit}".strip()


def _case_rows(case: CaseResult, baseline: CaseResult | None) -> list[str]:
    rows = []
    baseline_metrics = baseline.metrics_by_name() if baseline is not None else {}
    for metric in case.metrics:
        base = baseline_metrics.get(metric.name)
        if base is None or abs(base.value) < 1e-12:
            delta = "—"
        else:
            delta = f"{100.0 * (metric.value - base.value) / abs(base.value):+.1f}%"
        arrow = "↑" if metric.direction == "higher_is_better" else "↓"
        gated = "yes" if metric.gated else "no"
        rows.append(
            f"| `{case.name}` | `{metric.name}` {arrow} | {_fmt_value(metric)} | "
            f"{_fmt_value(base) if base is not None else '—'} | {delta} | {gated} |"
        )
    if case.error is not None:
        first_line = case.error.splitlines()[0]
        rows.append(f"| `{case.name}` | **ERROR** | `{first_line}` | — | — | — |")
    return rows


def render_suite(result: SuiteResult, baseline: SuiteResult | None = None) -> str:
    """One suite as a markdown section with a metric table."""
    mode = "smoke" if result.smoke else "full"
    lines = [
        f"## Suite `{result.suite}` ({mode})",
        "",
        f"- created: {result.created_at or 'unknown'}  ·  git: "
        f"`{result.git_sha or 'unknown'}`  ·  python {result.host.get('python', '?')} "
        f"/ numpy {result.host.get('numpy', '?')}",
        f"- cases: {len(result.cases)}, wall "
        f"{sum(case.wall_s for case in result.cases):.1f}s"
        + ("" if result.ok else " — **contains failed cases**"),
    ]
    if baseline is not None:
        lines.append(
            f"- baseline: {baseline.created_at or 'unknown'} "
            f"(git `{baseline.git_sha or 'unknown'}`)"
        )
    lines += [
        "",
        "| case | metric | value | baseline | Δ | gated |",
        "|---|---|---|---|---|---|",
    ]
    baseline_cases = baseline.cases_by_name() if baseline is not None else {}
    for case in result.cases:
        lines.extend(_case_rows(case, baseline_cases.get(case.name)))
    lines.append("")
    return "\n".join(lines)


def render_report(
    results: list[SuiteResult],
    baselines: dict[str, SuiteResult] | None = None,
    findings: list[Finding] | None = None,
    title: str = "Benchmark report",
) -> str:
    """Full markdown document across suites, with optional gate findings."""
    baselines = baselines or {}
    lines = [f"# {title}", ""]
    for result in results:
        lines.append(render_suite(result, baselines.get(result.suite)))
    if findings is not None:
        lines += ["## Gate findings", ""]
        failures = [finding for finding in findings if finding.fails]
        if not findings:
            lines.append("No findings.")
        for finding in findings:
            marker = "❌" if finding.fails else "·"
            lines.append(f"- {marker} {finding}")
        lines += [
            "",
            f"**{len(failures)} failing finding(s).**" if failures else "**Gate passed.**",
        ]
    lines.append("")
    return "\n".join(lines)


def write_report(path: str | Path, markdown: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(markdown)
    return path
