"""Discovery and execution of registered benchmark suites.

Discovery imports every ``benchmarks/bench_*.py`` file; the import side
effect is the :func:`repro.bench.benchmark_case` registrations.  Files are
imported under their stem name (``bench_kernels``) — the same name pytest
uses for rootless collection — so a process that mixes pytest and the runner
sees exactly one module object per file and re-registration stays idempotent.
Benchmark files that register nothing (the heavyweight accuracy experiments
that need a trained model) are imported and simply contribute no cases.
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path

from repro.bench import registry
from repro.bench.schema import (
    CaseResult,
    SuiteResult,
    collect_host_info,
    current_git_sha,
    result_filename,
    utc_now_iso,
)


def default_benchmarks_dir() -> Path:
    """Locate the repo's ``benchmarks/`` directory.

    Preference order: ``$REPRO_BENCHMARKS_DIR``, ``./benchmarks`` relative to
    the working directory, then the source checkout layout relative to this
    file (``src/repro/bench/runner.py`` → ``<repo>/benchmarks``).
    """
    import os

    env = os.environ.get("REPRO_BENCHMARKS_DIR")
    if env:
        return Path(env)
    cwd_candidate = Path.cwd() / "benchmarks"
    if cwd_candidate.is_dir():
        return cwd_candidate
    repo_candidate = Path(__file__).resolve().parents[3] / "benchmarks"
    if repo_candidate.is_dir():
        return repo_candidate
    return cwd_candidate


def discover(benchmarks_dir: str | Path | None = None) -> list[Path]:
    """Import every ``bench_*.py`` under ``benchmarks_dir``; return the files.

    Import errors are not swallowed: a benchmark file that cannot import is a
    broken suite and should fail loudly rather than silently shrink coverage.
    """
    directory = Path(benchmarks_dir) if benchmarks_dir else default_benchmarks_dir()
    if not directory.is_dir():
        raise FileNotFoundError(
            f"benchmarks directory {directory} does not exist "
            "(pass --benchmarks-dir or set REPRO_BENCHMARKS_DIR)"
        )
    # Benchmark files import their shared helpers (and each other) by stem.
    dir_str = str(directory.resolve())
    if dir_str not in sys.path:
        sys.path.insert(0, dir_str)
    files = sorted(directory.glob("bench_*.py"))
    for path in files:
        _import_by_stem(path)
    return files


def _import_by_stem(path: Path):
    name = path.stem
    cached = sys.modules.get(name)
    if cached is not None:
        return cached
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot build import spec for {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


def run_suite(
    suite: str,
    *,
    smoke: bool = False,
    case_names: list[str] | None = None,
    progress: bool = True,
) -> SuiteResult:
    """Run every registered case of ``suite`` (assumes discovery already ran)."""
    selected = registry.cases(suite)
    if case_names:
        wanted = set(case_names)
        # Names matching no suite at all are rejected in run_suites; here a
        # non-matching name simply belongs to a different suite.
        selected = [case for case in selected if case.name in wanted]
    result = SuiteResult(
        suite=suite,
        smoke=smoke,
        created_at=utc_now_iso(),
        git_sha=current_git_sha(),
        host=collect_host_info(),
    )
    for case in selected:
        if progress:
            print(f"[bench] {case.name} ...", flush=True)
        case_result = registry.run_case(case, smoke=smoke)
        result.cases.append(case_result)
        if progress:
            _print_case_outcome(case_result)
    return result


def _print_case_outcome(case_result: CaseResult) -> None:
    if case_result.error is not None:
        print(f"[bench] {case_result.name} FAILED after {case_result.wall_s:.1f}s")
        print("        " + case_result.error.splitlines()[0])
        return
    status = f"[bench] {case_result.name} ok in {case_result.wall_s:.1f}s"
    if case_result.wall_s > case_result.budget_s:
        status += f" (OVER BUDGET {case_result.budget_s:.0f}s)"
    print(status, flush=True)


def run_suites(
    suites: list[str],
    *,
    smoke: bool = False,
    benchmarks_dir: str | Path | None = None,
    output_dir: str | Path | None = None,
    case_names: list[str] | None = None,
    progress: bool = True,
) -> dict[str, SuiteResult]:
    """Discover, run and (optionally) persist the requested suites."""
    discover(benchmarks_dir)
    if case_names:
        available = {case.name for suite in suites for case in registry.cases(suite)}
        missing = set(case_names) - available
        if missing:
            raise KeyError(
                f"no case(s) named {sorted(missing)} in suite(s) {suites}"
            )
    start = time.perf_counter()
    results: dict[str, SuiteResult] = {}
    for suite in suites:
        result = run_suite(suite, smoke=smoke, case_names=case_names, progress=progress)
        if case_names and not result.cases:
            # The filter selected nothing from this suite; skip it rather
            # than clobber its BENCH_<suite>.json with an empty document.
            continue
        results[suite] = result
    if output_dir is not None:
        out = Path(output_dir)
        for suite, result in results.items():
            path = result.save(out / result_filename(suite))
            if progress:
                print(f"[bench] wrote {path}")
    if progress:
        total_cases = sum(len(r.cases) for r in results.values())
        print(
            f"[bench] ran {total_cases} case(s) across {len(results)} suite(s) "
            f"in {time.perf_counter() - start:.1f}s"
        )
    return results
