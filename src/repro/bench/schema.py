"""Machine-readable benchmark result schema (``BENCH_<suite>.json``).

Every suite run produces one JSON document that the gate and report commands
can consume without re-running anything.  The layout is versioned so future
PRs can evolve it without silently mis-reading old baselines:

.. code-block:: json

    {
      "schema_version": 1,
      "suite": "serving",
      "smoke": true,
      "created_at": "2026-07-26T12:00:00+00:00",
      "git_sha": "abc1234",
      "host": {"platform": "...", "python": "3.11.7", "numpy": "2.4.6", "cpu_count": 8},
      "cases": [
        {
          "name": "serving.prefix_sharing",
          "suite": "serving",
          "wall_s": 3.21,
          "budget_s": 60.0,
          "params": {"requests": 4, "prefix_tokens": 256},
          "error": null,
          "text": "human-readable table ...",
          "metrics": [
            {"name": "prefill_speedup_x", "value": 5.98, "unit": "x",
             "direction": "higher_is_better", "tolerance_pct": 60.0, "gated": true}
          ]
        }
      ]
    }

Directions are explicit per metric so the gate never has to guess whether a
bigger number is good (throughput) or bad (latency).  ``tolerance_pct`` is the
per-metric regression allowance recorded at measurement time; ``gated: false``
marks informational metrics (absolute wall-clock timings, which are too noisy
to gate in shared CI) that are reported but never fail the gate.
"""

from __future__ import annotations

import datetime as _dt
import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

SCHEMA_VERSION = 1

LOWER_IS_BETTER = "lower_is_better"
HIGHER_IS_BETTER = "higher_is_better"
_DIRECTIONS = (LOWER_IS_BETTER, HIGHER_IS_BETTER)


class SchemaError(ValueError):
    """Raised when a benchmark JSON document does not match the schema."""


@dataclass(frozen=True)
class Metric:
    """One measured number with enough metadata to compare runs."""

    name: str
    value: float
    unit: str = ""
    direction: str = LOWER_IS_BETTER
    tolerance_pct: float | None = None
    gated: bool = True

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise SchemaError(
                f"metric {self.name!r}: direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if not math.isfinite(self.value):
            # A NaN would compare False against every tolerance and sail
            # through the gate; reject it at record/load time instead.
            raise SchemaError(f"metric {self.name!r}: value must be finite, got {self.value!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "tolerance_pct": self.tolerance_pct,
            "gated": self.gated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Metric":
        _require(data, ("name", "value"), "metric")
        tolerance = data.get("tolerance_pct")
        return cls(
            name=str(data["name"]),
            value=float(data["value"]),
            unit=str(data.get("unit", "")),
            direction=str(data.get("direction", LOWER_IS_BETTER)),
            tolerance_pct=None if tolerance is None else float(tolerance),
            gated=bool(data.get("gated", True)),
        )


@dataclass
class CaseResult:
    """Outcome of one registered benchmark case."""

    name: str
    suite: str
    metrics: list[Metric] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    budget_s: float = 0.0
    error: str | None = None
    text: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"case {self.name!r} recorded no metric named {name!r}")

    def metrics_by_name(self) -> dict[str, Metric]:
        return {metric.name: metric for metric in self.metrics}

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "suite": self.suite,
            "wall_s": round(self.wall_s, 4),
            "budget_s": self.budget_s,
            "params": self.params,
            "error": self.error,
            "text": self.text,
            "metrics": [metric.to_dict() for metric in self.metrics],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CaseResult":
        _require(data, ("name", "suite", "metrics"), "case")
        if not isinstance(data["metrics"], list):
            raise SchemaError(f"case {data['name']!r}: 'metrics' must be a list")
        return cls(
            name=str(data["name"]),
            suite=str(data["suite"]),
            metrics=[Metric.from_dict(m) for m in data["metrics"]],
            params=dict(data.get("params", {})),
            wall_s=float(data.get("wall_s", 0.0)),
            budget_s=float(data.get("budget_s", 0.0)),
            error=data.get("error"),
            text=str(data.get("text", "")),
        )


@dataclass
class SuiteResult:
    """One suite run: everything needed to diff it against another run."""

    suite: str
    smoke: bool
    cases: list[CaseResult] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION
    created_at: str = ""
    git_sha: str | None = None
    host: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def case(self, name: str) -> CaseResult:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(f"suite {self.suite!r} has no case named {name!r}")

    def cases_by_name(self) -> dict[str, CaseResult]:
        return {case.name: case for case in self.cases}

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "smoke": self.smoke,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "host": self.host,
            "cases": [case.to_dict() for case in self.cases],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SuiteResult":
        if not isinstance(data, dict):
            raise SchemaError(f"suite document must be a JSON object, got {type(data).__name__}")
        _require(data, ("schema_version", "suite", "smoke", "cases"), "suite")
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema_version {version!r} (this build reads {SCHEMA_VERSION})"
            )
        if not isinstance(data["cases"], list):
            raise SchemaError("suite 'cases' must be a list")
        return cls(
            suite=str(data["suite"]),
            smoke=bool(data["smoke"]),
            cases=[CaseResult.from_dict(c) for c in data["cases"]],
            schema_version=int(version),
            created_at=str(data.get("created_at", "")),
            git_sha=data.get("git_sha"),
            host=dict(data.get("host", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SuiteResult":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
        try:
            return cls.from_dict(data)
        except SchemaError as exc:
            raise SchemaError(f"{path}: {exc}") from exc


def result_filename(suite: str) -> str:
    """Canonical on-disk name for one suite's results."""
    return f"BENCH_{suite}.json"


def suite_files(directory: str | Path) -> list[Path]:
    """All ``BENCH_*.json`` documents under ``directory``, sorted by name."""
    return sorted(Path(directory).glob("BENCH_*.json"))


def collect_host_info() -> dict[str, Any]:
    """Enough host context to judge whether two runs are comparable."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep everywhere else
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
    }


def current_git_sha(cwd: str | Path | None = None) -> str | None:
    """Short git SHA of the working tree, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def utc_now_iso() -> str:
    return _dt.datetime.now(tz=_dt.timezone.utc).isoformat(timespec="seconds")


def _require(data: dict[str, Any], keys: Iterable[str], kind: str) -> None:
    missing = [key for key in keys if key not in data]
    if missing:
        raise SchemaError(f"{kind} document missing required keys: {missing}")
