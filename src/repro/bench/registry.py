"""Benchmark case registry and the decorator API benchmark files use.

A benchmark file under ``benchmarks/`` registers its measurement cores like::

    from repro.bench import benchmark_case

    @benchmark_case("serving.prefix_sharing", suite="serving",
                    budget_s=300.0, smoke_budget_s=60.0)
    def bench_prefix_sharing(ctx):
        n = ctx.pick(full=8, smoke=4)
        ...
        ctx.record("prefill_speedup_x", speedup, unit="x",
                   direction="higher_is_better", tolerance_pct=60.0)

The same function then backs both entry points: the ``pytest -s`` test in the
benchmark file (which asserts the paper's qualitative claims on the recorded
metrics) and ``python -m repro.bench run`` (which persists them to
``BENCH_<suite>.json`` for the CI gate).  Case functions should only *assert*
correctness invariants (e.g. token-identical outputs); threshold claims belong
in the pytest wrappers and regressions are caught by the gate against
committed baselines.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.bench.schema import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    CaseResult,
    Metric,
)

#: Known suites; registration outside this set is rejected to catch typos.
SUITES = ("serving", "quant", "kernels")


class BenchContext:
    """Handed to every case function; collects metrics, params and report text."""

    def __init__(self, smoke: bool = False):
        self.smoke = bool(smoke)
        self.params: dict[str, Any] = {}
        self.metrics: list[Metric] = []
        self._lines: list[str] = []

    # -- configuration helpers -------------------------------------------------

    def pick(self, full: Any, smoke: Any) -> Any:
        """Choose a size parameter depending on smoke mode."""
        return smoke if self.smoke else full

    def set_params(self, **params: Any) -> None:
        """Record the configuration knobs this run used (stored in the JSON)."""
        self.params.update(params)

    # -- measurement -----------------------------------------------------------

    def record(
        self,
        name: str,
        value: float,
        *,
        unit: str = "",
        direction: str = LOWER_IS_BETTER,
        tolerance_pct: float | None = None,
        gated: bool = True,
    ) -> Metric:
        """Record one metric; ``gated=False`` marks it informational-only."""
        if any(metric.name == name for metric in self.metrics):
            raise ValueError(f"metric {name!r} recorded twice in one case")
        metric = Metric(
            name=name,
            value=float(value),
            unit=unit,
            direction=direction,
            tolerance_pct=tolerance_pct,
            gated=gated,
        )
        self.metrics.append(metric)
        return metric

    def measure(
        self,
        fn: Callable[[], Any],
        *,
        repeats: int = 10,
        warmup: int = 2,
    ) -> float:
        """Mean wall seconds per call of ``fn`` after ``warmup`` untimed calls."""
        for _ in range(warmup):
            fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    # -- human-readable report ------------------------------------------------

    def emit(self, *lines: str) -> None:
        """Append lines to the case's human-readable report table."""
        self._lines.extend(lines)

    @property
    def text(self) -> str:
        return "\n".join(self._lines)


# Convenience re-exports so benchmark files only import from repro.bench.
LOWER = LOWER_IS_BETTER
HIGHER = HIGHER_IS_BETTER


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: a named, suite-tagged measurement function."""

    name: str
    suite: str
    fn: Callable[[BenchContext], None]
    budget_s: float = 120.0
    smoke_budget_s: float = 30.0
    module: str = ""
    qualname: str = ""

    def budget(self, smoke: bool) -> float:
        return self.smoke_budget_s if smoke else self.budget_s


_REGISTRY: dict[str, BenchCase] = {}


def register(case: BenchCase) -> BenchCase:
    """Register ``case``; re-registering the same function is idempotent.

    Two *different* functions claiming one name is a bug (silent clobbering
    would make a suite quietly lose coverage), so that raises.  Re-importing
    the module that defined a case — pytest and the runner may both import a
    benchmark file — replaces the entry in place.
    """
    if case.suite not in SUITES:
        raise ValueError(
            f"benchmark case {case.name!r}: unknown suite {case.suite!r} "
            f"(expected one of {SUITES})"
        )
    existing = _REGISTRY.get(case.name)
    if existing is not None and (existing.module, existing.qualname) != (
        case.module,
        case.qualname,
    ):
        raise ValueError(
            f"duplicate benchmark case name {case.name!r}: already registered by "
            f"{existing.module}.{existing.qualname}, now also "
            f"{case.module}.{case.qualname}"
        )
    _REGISTRY[case.name] = case
    return case


def unregister(name: str) -> None:
    """Remove a case (test helper; discovery never unregisters)."""
    _REGISTRY.pop(name, None)


def benchmark_case(
    name: str,
    *,
    suite: str,
    budget_s: float = 120.0,
    smoke_budget_s: float = 30.0,
) -> Callable[[Callable[[BenchContext], None]], Callable[[BenchContext], None]]:
    """Decorator registering ``fn`` as benchmark case ``name`` in ``suite``."""

    def decorate(fn: Callable[[BenchContext], None]) -> Callable[[BenchContext], None]:
        register(
            BenchCase(
                name=name,
                suite=suite,
                fn=fn,
                budget_s=budget_s,
                smoke_budget_s=smoke_budget_s,
                module=fn.__module__,
                qualname=fn.__qualname__,
            )
        )
        return fn

    return decorate


def get_case(name: str) -> BenchCase:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"no benchmark case named {name!r} (registered: {known})") from None


def cases(suite: str | None = None) -> list[BenchCase]:
    """All registered cases (optionally one suite's), sorted by name."""
    selected = [
        case for case in _REGISTRY.values() if suite is None or case.suite == suite
    ]
    return sorted(selected, key=lambda case: case.name)


def run_case(case: BenchCase | str, *, smoke: bool = False) -> CaseResult:
    """Execute one case, capturing metrics, wall time and any failure."""
    if isinstance(case, str):
        case = get_case(case)
    ctx = BenchContext(smoke=smoke)
    error: str | None = None
    start = time.perf_counter()
    try:
        case.fn(ctx)
    except Exception as exc:  # noqa: BLE001 - a failed case must not kill the run
        tail = traceback.format_exc(limit=4)
        error = f"{type(exc).__name__}: {exc}\n{tail}"
    wall_s = time.perf_counter() - start
    return CaseResult(
        name=case.name,
        suite=case.suite,
        metrics=list(ctx.metrics),
        params=dict(ctx.params),
        wall_s=wall_s,
        budget_s=case.budget(smoke),
        error=error,
        text=ctx.text,
    )
