"""Unified benchmark harness: registry, runner, regression gate and reports.

The paper's claims are performance claims, so this package gives every
benchmark one machine-readable trajectory:

* :func:`benchmark_case` — decorator each ``benchmarks/bench_*.py`` file uses
  to register its measurement core (see :mod:`repro.bench.registry`);
* ``python -m repro.bench run [--smoke] [--suite serving|quant|kernels|all]``
  — execute suites and write schema-versioned ``BENCH_<suite>.json``
  (:mod:`repro.bench.runner`, :mod:`repro.bench.schema`);
* ``python -m repro.bench gate --baseline benchmarks/baselines`` — diff a run
  against committed baselines, exiting non-zero on regressions beyond
  per-metric tolerances (:mod:`repro.bench.gate`);
* ``python -m repro.bench report`` — render results as markdown
  (:mod:`repro.bench.report`).
"""

from repro.bench.registry import (
    HIGHER,
    LOWER,
    BenchCase,
    BenchContext,
    benchmark_case,
    cases,
    get_case,
    run_case,
)
from repro.bench.schema import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    SCHEMA_VERSION,
    CaseResult,
    Metric,
    SchemaError,
    SuiteResult,
    result_filename,
)

__all__ = [
    "BenchCase",
    "BenchContext",
    "CaseResult",
    "HIGHER",
    "HIGHER_IS_BETTER",
    "LOWER",
    "LOWER_IS_BETTER",
    "Metric",
    "SCHEMA_VERSION",
    "SchemaError",
    "SuiteResult",
    "benchmark_case",
    "cases",
    "get_case",
    "result_filename",
    "run_case",
]
