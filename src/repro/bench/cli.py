"""Command-line interface: ``python -m repro.bench`` / ``repro-bench``.

Subcommands
-----------

``run``
    Execute one suite (or ``all``), writing ``BENCH_<suite>.json`` to
    ``--output-dir`` (default ``benchmarks/results``).  ``--write-baseline``
    additionally refreshes the committed ``benchmarks/baselines/`` copies.

``gate``
    Diff current results against committed baselines and exit non-zero on
    any regression beyond tolerance.  If ``--current`` is omitted the suites
    named by the baselines are re-run fresh first.

``report``
    Render every ``BENCH_*.json`` under a directory as one markdown document
    (optionally diffed against the baselines directory).

``list``
    Show the registered cases per suite.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench import gate as gate_mod
from repro.bench import registry, report, runner
from repro.bench.schema import SchemaError, SuiteResult, result_filename, suite_files

DEFAULT_OUTPUT_DIR = Path("benchmarks") / "results"
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"


def _suite_choices(value: str) -> list[str]:
    if value == "all":
        return list(registry.SUITES)
    if value in registry.SUITES:
        return [value]
    raise argparse.ArgumentTypeError(
        f"unknown suite {value!r}; choose from {', '.join(registry.SUITES)} or 'all'"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Unified benchmark harness: run suites, gate regressions, render reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run benchmark suites and write BENCH_<suite>.json")
    run_p.add_argument(
        "--suite",
        type=_suite_choices,
        default=list(registry.SUITES),
        help="serving | quant | kernels | all (default: all)",
    )
    run_p.add_argument("--smoke", action="store_true", help="tiny sizes for CI smoke runs")
    run_p.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR)
    run_p.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"also refresh the committed baselines under {DEFAULT_BASELINE_DIR}",
    )
    run_p.add_argument("--baseline-dir", type=Path, default=DEFAULT_BASELINE_DIR)
    run_p.add_argument("--benchmarks-dir", type=Path, default=None)
    run_p.add_argument(
        "--case",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named case(s); repeatable",
    )

    gate_p = sub.add_parser("gate", help="fail on perf regressions vs committed baselines")
    gate_p.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="baseline BENCH_*.json file or directory of them",
    )
    gate_p.add_argument(
        "--current",
        type=Path,
        default=None,
        help="current BENCH_*.json file or directory; omitted = run the suites fresh",
    )
    gate_p.add_argument(
        "--tolerance-pct",
        type=float,
        default=gate_mod.DEFAULT_TOLERANCE_PCT,
        help="default regression allowance for metrics without a recorded tolerance",
    )
    gate_p.add_argument("--smoke", action="store_true", help="fresh runs use smoke sizes")
    gate_p.add_argument("--benchmarks-dir", type=Path, default=None)
    gate_p.add_argument(
        "--report-output", type=Path, default=None, help="also write a markdown report here"
    )

    report_p = sub.add_parser("report", help="render BENCH_*.json as markdown")
    report_p.add_argument(
        "--results", type=Path, default=DEFAULT_OUTPUT_DIR,
        help="BENCH_*.json file or directory of them",
    )
    report_p.add_argument(
        "--baseline", type=Path, default=None,
        help="optional baseline file/directory for a Δ column",
    )
    report_p.add_argument("--output", type=Path, default=None, help="write markdown here")

    list_p = sub.add_parser("list", help="list registered benchmark cases")
    list_p.add_argument("--suite", type=_suite_choices, default=list(registry.SUITES))
    list_p.add_argument("--benchmarks-dir", type=Path, default=None)

    return parser


def _load_results(path: Path) -> list[SuiteResult]:
    if path.is_dir():
        files = suite_files(path)
        if not files:
            raise FileNotFoundError(f"no BENCH_*.json files under {path}")
        return [SuiteResult.load(f) for f in files]
    return [SuiteResult.load(path)]


def _annotate_failure(finding: gate_mod.Finding) -> None:
    """Emit a GitHub Actions error annotation naming the regressed metric."""
    if os.environ.get("GITHUB_ACTIONS") != "true":
        return
    where = f"{finding.suite}/{finding.case}"
    metric = finding.metric or "(case)"
    print(
        f"::error title=Benchmark regression in {where}::"
        f"metric {metric}: {finding.message}"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.write_baseline and args.case:
        # A filtered run would overwrite a full-suite baseline with a partial
        # document, silently shrinking what the gate covers.
        print(
            "[bench] error: --write-baseline cannot be combined with --case; "
            "refresh baselines from a full suite run",
            file=sys.stderr,
        )
        return 2
    results = runner.run_suites(
        args.suite,
        smoke=args.smoke,
        benchmarks_dir=args.benchmarks_dir,
        output_dir=args.output_dir,
        case_names=args.case,
    )
    failed = [
        case.name for result in results.values() for case in result.cases if not case.ok
    ]
    if failed:
        if args.write_baseline:
            print("[bench] NOT refreshing baselines: run contains failed cases",
                  file=sys.stderr)
        print(f"[bench] FAILED case(s): {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.write_baseline:
        for suite, result in results.items():
            path = result.save(args.baseline_dir / result_filename(suite))
            print(f"[bench] refreshed baseline {path}")
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    baselines = _load_results(args.baseline)
    if args.current is not None:
        current_by_suite = {r.suite: r for r in _load_results(args.current)}
    else:
        suites = [b.suite for b in baselines]
        current_by_suite = runner.run_suites(
            suites, smoke=args.smoke, benchmarks_dir=args.benchmarks_dir, output_dir=None
        )
    all_findings: list[gate_mod.Finding] = []
    current_results: list[SuiteResult] = []
    for baseline in baselines:
        current = current_by_suite.get(baseline.suite)
        if current is None:
            all_findings.append(
                gate_mod.Finding(
                    gate_mod.Kind.MISSING_CASE,
                    baseline.suite,
                    "",
                    "",
                    f"no current results for suite {baseline.suite!r} "
                    f"(expected {result_filename(baseline.suite)})",
                )
            )
            continue
        current_results.append(current)
        all_findings.extend(
            gate_mod.compare_suites(
                baseline, current, default_tolerance_pct=args.tolerance_pct
            )
        )
    for finding in all_findings:
        print(finding)
        if finding.fails:
            _annotate_failure(finding)
    print(gate_mod.summarize(all_findings))
    if args.report_output is not None:
        markdown = report.render_report(
            current_results,
            baselines={b.suite: b for b in baselines},
            findings=all_findings,
            title="Benchmark gate report",
        )
        report.write_report(args.report_output, markdown)
        print(f"[bench] wrote {args.report_output}")
    return 1 if gate_mod.has_failures(all_findings) else 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = _load_results(args.results)
    baselines: dict[str, SuiteResult] = {}
    if args.baseline is not None:
        try:
            baselines = {r.suite: r for r in _load_results(args.baseline)}
        except FileNotFoundError:
            print(f"[bench] no baselines under {args.baseline}; rendering without Δ")
    markdown = report.render_report(results, baselines=baselines)
    if args.output is not None:
        report.write_report(args.output, markdown)
        print(f"[bench] wrote {args.output}")
    else:
        print(markdown)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    runner.discover(args.benchmarks_dir)
    for suite in args.suite:
        cases = registry.cases(suite)
        print(f"{suite}: {len(cases)} case(s)")
        for case in cases:
            print(
                f"  {case.name:40s} budget {case.budget_s:>6.0f}s "
                f"(smoke {case.smoke_budget_s:>4.0f}s)  [{case.module}]"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "gate": _cmd_gate,
        "report": _cmd_report,
        "list": _cmd_list,
    }[args.command]
    try:
        return handler(args)
    except (SchemaError, FileNotFoundError, KeyError) as exc:
        print(f"[bench] error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
