#!/usr/bin/env python
"""Decode-throughput analysis with the analytic GPU performance model.

Prints the Table IV style TPOT comparison, the Fig. 7 style per-operator
breakdown, the dual-stream (asynchronous quantization) effect and the maximum
servable context length per scheme on a chosen GPU.

Run with::

    python examples/throughput_analysis.py [--device a40] [--model llama-2-7b]
"""

from __future__ import annotations

import argparse

from repro.perf import (
    PERF_MODEL_PRESETS,
    SCHEME_PRESETS,
    breakdown_sweep,
    estimate_tpot,
    get_device,
    get_scheme,
    max_context_length,
    tpot_table,
)

TABLE_SCHEMES = ["baseline-fp16", "kivi-4b", "kvquant-4b", "million-4b"]
PREFILL_LENGTHS = [1024, 2048, 4096, 8192, 16384, 32768]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="a40", help="GPU preset (a40, a100-80gb)")
    parser.add_argument("--model", default="llama-2-7b", choices=sorted(PERF_MODEL_PRESETS))
    args = parser.parse_args()

    device = get_device(args.device)
    config = PERF_MODEL_PRESETS[args.model]
    print(f"model: {config.name}   device: {device.name} "
          f"({device.memory_gb:.0f} GB, {device.memory_bandwidth_gbs:.0f} GB/s)")

    # Table IV: TPOT per scheme per prefill length.
    print("\nTPOT (ms/token, 100 generated tokens)")
    header = "prefill".rjust(16) + "".join(f"{l // 1024:>7d}K" for l in PREFILL_LENGTHS)
    print(header)
    table = tpot_table(config, TABLE_SCHEMES, PREFILL_LENGTHS, device=device)
    for scheme in TABLE_SCHEMES:
        cells = "".join(
            f"{'OOM':>8s}" if r.oom else f"{r.tpot_ms:>8.2f}" for r in table[scheme]
        )
        print(f"{scheme:>16s}{cells}")

    # Fig. 7: per-operator breakdown and speedups.
    print("\nPer-operator breakdown at 32K context (ms/decode step)")
    points = breakdown_sweep(config, [32768], device=device)
    point = points[0]
    operators = sorted(point.baseline.operator_ms, key=point.baseline.operator_ms.get, reverse=True)
    print(f"{'operator':>16s} {'baseline':>10s} {'million-4b':>11s}")
    for op in operators[:8]:
        base = point.baseline.operator_ms.get(op, 0.0)
        mill = point.million.operator_ms.get(op, 0.0)
        print(f"{op:>16s} {base:>10.2f} {mill:>11.2f}")
    print(f"SDPA speedup: {point.sdpa_speedup:.2f}x   end-to-end speedup: {point.e2e_speedup:.2f}x")

    # Asynchronous quantization ablation.
    sync = estimate_tpot(config, "million-4b-sync", 16384, device=device).tpot_ms
    async_ = estimate_tpot(config, "million-4b", 16384, device=device).tpot_ms
    print(f"\nasync quantization at 16K context: {async_:.2f} ms vs {sync:.2f} ms synchronous")

    # Maximum servable context per scheme.
    print("\nmaximum context length before OOM")
    for name in TABLE_SCHEMES:
        limit = max_context_length(config, get_scheme(name), device)
        print(f"{name:>16s} {limit:>10d} tokens")


if __name__ == "__main__":
    main()
