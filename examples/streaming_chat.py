#!/usr/bin/env python
"""Multi-turn decoding on a single ever-growing quantized context.

Simulates a long multi-turn interaction (the "extended multi-turn
interactions" use case from the paper's introduction): each turn appends a
new synthetic user message to the same context and decodes a reply, while the
MILLION cache keeps compressing everything that scrolls out of the recent
window.  After every turn the script reports the context length, how many
tokens live as 4-bit PQ codes, the cache footprint versus fp16 and the decode
fidelity against a full-precision reference for the latest turn.

Run with::

    python examples/streaming_chat.py [--turns 6]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import MillionConfig, MillionEngine
from repro.data import load_corpus
from repro.models import load_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--turns", type=int, default=6, help="number of conversation turns")
    parser.add_argument("--turn-tokens", type=int, default=192, help="tokens per user message")
    parser.add_argument("--reply-tokens", type=int, default=16, help="tokens decoded per reply")
    args = parser.parse_args()

    model = load_model("longchat-7b-tiny", seed=0, max_seq_len=8192)
    calibration = load_corpus("wikitext2-syn", "train", 1024)
    config = MillionConfig.for_equivalent_bits(model.config.head_dim, bits=4, recent_window=16)
    engine = MillionEngine.calibrate(model, calibration, config)

    conversation = load_corpus("wikitext2-syn", "test", args.turns * args.turn_tokens)
    engine.reset()
    print(
        f"{'turn':>5s} {'context':>8s} {'quantized':>10s} {'cache KiB':>10s} "
        f"{'fp16 KiB':>9s} {'ratio':>6s} {'top-1 vs fp16':>14s}"
    )
    for turn in range(args.turns):
        message = conversation[turn * args.turn_tokens : (turn + 1) * args.turn_tokens]
        logits = engine.model.forward(message)  # append the user message to the context
        # Decode a short reply on the quantized context.
        token = int(np.argmax(logits[-1]))
        reply = [token]
        for _ in range(args.reply_tokens - 1):
            token = int(np.argmax(engine.decode_step(token)))
            reply.append(token)
        # Fidelity of the final decode step against a full-precision run of
        # the same context (recomputed from scratch, so it is exact).
        context_so_far = np.concatenate(
            [conversation[: (turn + 1) * args.turn_tokens], np.asarray(reply[:-1])]
        )
        reference = engine.baseline_logits(context_so_far)[-1]
        agreement = "yes" if int(np.argmax(reference)) == reply[-1] else "no"
        stats = engine.cache_stats()
        print(
            f"{turn + 1:>5d} {stats.context_length:>8d} {stats.quantized_tokens:>10d} "
            f"{stats.memory_bytes / 1024:>10.1f} {stats.fp16_memory_bytes / 1024:>9.1f} "
            f"{stats.compression_ratio:>6.2f} {agreement:>14s}"
        )
    print(
        "\nThe conversation keeps growing, but almost all of it is stored as"
        " 4-bit PQ codes; only the recent window stays in full precision."
    )


if __name__ == "__main__":
    main()
