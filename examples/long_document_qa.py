#!/usr/bin/env python
"""Long-document fact retrieval with a quantized KV cache.

Builds a synthetic long document with facts buried at several depths (the
scenario motivating long-context inference in the paper's introduction),
answers questions about them with the fp16 cache and with MILLION-4b, and
reports both the retrieval scores and the KV-cache memory of each scheme.

Run with::

    python examples/long_document_qa.py [--trained]

``--trained`` first trains a tiny model (about a minute) so the retrieval
scores are meaningful rather than near zero.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import load_corpus
from repro.eval import build_cache_factory, evaluate_task
from repro.eval.longbench import SingleDocQATask
from repro.models import load_model
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.training import train_tiny_lm


def build_model(trained: bool):
    if not trained:
        return load_model("llama-2-7b-tiny", seed=0, max_seq_len=4096)
    config = ModelConfig(
        name="long-doc-qa",
        vocab_size=512,
        d_model=128,
        n_layers=2,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
    )
    print("training a tiny model (about a minute)...")
    model, history = train_tiny_lm(
        config, steps=250, batch_size=8, seq_len=192, induction_fraction=0.5, seed=0, log_every=0
    )
    print(f"  final training loss {history.final_loss:.3f}")
    return model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trained", action="store_true", help="train the model first")
    parser.add_argument("--examples", type=int, default=3, help="examples per depth")
    args = parser.parse_args()

    model = build_model(args.trained)
    calibration = load_corpus("wikitext2-syn", "train", 1024) % model.config.vocab_size

    factories = {
        "fp16": FullPrecisionCacheFactory(),
        "million-4b": build_cache_factory(
            "million-4b", model, calibration, kmeans_iters=8, calibration_samples=2048
        ),
    }

    print(f"\n{'document length':>16s} {'scheme':>12s} {'QA score':>9s} {'KV cache KiB':>13s}")
    for context_length in (512, 1024, 2048):
        task = SingleDocQATask("needle-qa", "single-doc QA", context_length=context_length)
        for scheme, factory in factories.items():
            result = evaluate_task(
                model, task, factory, n_examples=args.examples, seed=1, scheme_name=scheme
            )
            kv_kib = model.cache_memory_bytes() / 1024.0
            print(
                f"{context_length:>16d} {scheme:>12s} {result.score:>9.1f} {kv_kib:>13.1f}"
            )
    print(
        "\nThe quantized cache answers from 4-bit PQ codes; its footprint is a"
        " fraction of fp16 while the retrieval score tracks the fp16 cache."
    )


if __name__ == "__main__":
    main()
