#!/usr/bin/env python
"""Serving-gateway demo: streaming completions over HTTP with prefix routing.

Starts a two-replica :class:`GatewayServer` in-process (each replica is a
:class:`BatchedMillionEngine` with its own paged block pool), then plays an
HTTP client against it with plain asyncio sockets:

1. streams one completion token by token (server-sent events, exactly what
   ``curl -N`` would show);
2. sends a burst of requests sharing one system prefix — the
   :class:`ReplicaRouter` sends them all to the same replica, so the prefix
   is prefilled once and every later request adopts the published pool
   blocks;
3. scrapes ``/metrics`` and prints the prefix-hit and routing counters that
   prove the reuse happened.

For the standalone server use ``python -m repro.gateway`` (see the README
quickstart).  Run this demo with::

    python examples/gateway_streaming.py [--requests 4] [--prefix-tokens 192]
"""

from __future__ import annotations

import argparse
import asyncio
import json

import numpy as np

from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import load_model
from repro.serving import BatchedMillionEngine, BlockPool, PooledMillionCacheFactory


async def http_post(host: str, port: int, path: str, payload: dict) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload).encode()
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: demo\r\n"
            f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    return data.partition(b"\r\n\r\n")[2]


async def http_get(host: str, port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    return data.partition(b"\r\n\r\n")[2].decode()


def sse_tokens(body: bytes) -> list[int]:
    tokens = []
    for line in body.decode().splitlines():
        if line.startswith("data: ") and line != "data: [DONE]":
            token = json.loads(line[len("data: "):])["choices"][0]["token_id"]
            if token is not None:
                tokens.append(token)
    return tokens


async def run_demo(args: argparse.Namespace) -> None:
    million = None
    engines = []
    print("calibrating MILLION codebooks once, building 2 replicas ...")
    base_factory = None
    for index in range(2):
        model = load_model("llama-2-7b-tiny", seed=0, max_seq_len=1024)
        if million is None:
            million = MillionConfig.for_equivalent_bits(
                model.config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
            )
            calibration = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
            base_factory = calibrate_million(model, calibration, million)
        pool = BlockPool.for_model(
            model.config, million, num_blocks=512, block_tokens=16
        )
        factory = PooledMillionCacheFactory.from_factory(base_factory, pool)
        engines.append(BatchedMillionEngine(model, factory, max_batch_size=4))

    runners = [
        AsyncEngineRunner(engine, name=f"replica-{i}") for i, engine in enumerate(engines)
    ]
    server = GatewayServer(ReplicaRouter(runners))
    host, port = await server.start(port=0)
    print(f"gateway listening on http://{host}:{port}\n")
    try:
        vocab = engines[0].model.config.vocab_size
        prefix = (load_corpus("wikitext2-syn", "test", args.prefix_tokens, seed=42) % vocab)

        print("--- streaming one completion (what curl -N shows) ---")
        body = await http_post(
            host, port, "/v1/completions",
            {"prompt": prefix[:32].tolist(), "max_tokens": 12, "stream": True},
        )
        print(f"streamed tokens: {sse_tokens(body)}\n")

        print(f"--- {args.requests} concurrent requests sharing a "
              f"{args.prefix_tokens}-token system prefix ---")
        suffixes = [
            (load_corpus("wikitext2-syn", "test", 8, seed=100 + i) % vocab)
            for i in range(args.requests)
        ]
        responses = await asyncio.gather(
            *(
                http_post(
                    host, port, "/v1/completions",
                    {
                        "prompt": np.concatenate([prefix, suffix]).tolist(),
                        "max_tokens": 8,
                        "stream": True,
                    },
                )
                for suffix in suffixes
            )
        )
        for i, body in enumerate(responses):
            print(f"  request {i}: {sse_tokens(body)}")

        metrics = await http_get(host, port, "/metrics")
        print("\n--- /metrics excerpts (prefix reuse + routing) ---")
        for line in metrics.splitlines():
            if line.startswith(
                (
                    "repro_engine_prefill_tokens",
                    "repro_engine_prefix_block",
                    "repro_router_decisions",
                    "repro_pool_adoptions",
                    "repro_gateway_tokens_streamed",
                )
            ):
                print(f"  {line}")
    finally:
        await server.stop()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--prefix-tokens", type=int, default=192)
    args = parser.parse_args()
    asyncio.run(run_demo(args))


if __name__ == "__main__":
    main()
