#!/usr/bin/env python
"""Compare KV-cache quantization schemes on perplexity and logit fidelity.

Evaluates the fp16 baseline, the KIVI-like and KVQuant-like baselines and
MILLION at 3 and 4 bits on a synthetic corpus, reporting perplexity, KL
divergence from the fp16 logits, top-1 agreement and the modelled cache
footprint per 1K tokens.

Run with::

    python examples/compare_quantizers.py [--trained] [--tokens 1024]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import load_corpus
from repro.eval import (
    build_scheme_factories,
    compute_perplexity,
    logit_fidelity,
    perplexity_by_scheme,
)
from repro.models import load_model
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.training import train_tiny_lm

SCHEMES = ["baseline", "kivi-4b", "kvquant-3b", "kvquant-4b", "million-3b", "million-4b"]


def cache_kib_per_1k(model, factory) -> float:
    """Measured cache footprint after prefill of 1K tokens (codebooks included)."""
    model.reset_cache(factory or FullPrecisionCacheFactory())
    stream = load_corpus("wikitext2-syn", "validation", 1024) % model.config.vocab_size
    for start in range(0, 1024, 128):
        model.forward(stream[start : start + 128])
    kib = model.cache_memory_bytes() / 1024.0
    model.reset_cache(FullPrecisionCacheFactory())
    return kib


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trained", action="store_true", help="train the model first")
    parser.add_argument("--tokens", type=int, default=768, help="evaluation tokens")
    args = parser.parse_args()

    if args.trained:
        config = ModelConfig(
            name="compare-quantizers", vocab_size=512, d_model=128, n_layers=2, n_heads=4,
            max_seq_len=4096, positional="rope",
        )
        print("training a tiny model (about a minute)...")
        model, _ = train_tiny_lm(config, steps=250, batch_size=8, seq_len=192, seed=0, log_every=0)
    else:
        model = load_model("llama-2-7b-tiny", seed=0)

    calibration = load_corpus("wikitext2-syn", "train", 1024) % model.config.vocab_size
    test = load_corpus("wikitext2-syn", "test", args.tokens) % model.config.vocab_size

    print("calibrating schemes...")
    factories = build_scheme_factories(
        SCHEMES, model, calibration, kmeans_iters=8, calibration_samples=2048
    )
    perplexities = perplexity_by_scheme(model, test, factories, chunk_size=16)

    print(f"\n{'scheme':>12s} {'ppl':>9s} {'KL vs fp16':>11s} {'top-1 agree':>12s} {'KiB/1K tok':>11s}")
    for scheme in SCHEMES:
        ppl = perplexities[scheme].perplexity
        if scheme == "baseline":
            kl, agree = 0.0, 1.0
        else:
            fidelity = logit_fidelity(model, test[:256], factories[scheme], chunk_size=16)
            kl, agree = fidelity.mean_kl, fidelity.top1_agreement
        kib = cache_kib_per_1k(model, factories[scheme])
        print(f"{scheme:>12s} {ppl:>9.2f} {kl:>11.4f} {agree:>12.3f} {kib:>11.1f}")

    print(
        "\nMILLION matches the fp16 baseline closely at 4 bits (and stays stable"
        " at 3 bits) while shrinking the cache by ~4x; the uniform-integer and"
        " non-uniform baselines need more care with outliers to do the same."
    )


if __name__ == "__main__":
    main()
