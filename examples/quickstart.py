#!/usr/bin/env python
"""Quickstart: calibrate MILLION on a tiny model and generate with a 4-bit KV cache.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MillionConfig, MillionEngine
from repro.data import load_corpus
from repro.models import load_model


def main() -> None:
    # 1. Load a model.  "llama-2-7b-tiny" is the RoPE analogue from the model
    #    zoo (see repro.models.model_zoo for the full Table I roster).
    model = load_model("llama-2-7b-tiny", seed=0)
    print(f"model: {model.config.name}  ({model.num_parameters():,} parameters)")

    # 2. Offline phase (paper Fig. 4a): sample the KV cache on calibration
    #    text and train the per-layer product-quantization codebooks.
    calibration = load_corpus("wikitext2-syn", "train", n_tokens=1024)
    config = MillionConfig.for_equivalent_bits(model.config.head_dim, bits=4, recent_window=8)
    print(
        f"MILLION config: M={config.m_subspaces}, nbits={config.nbits} "
        f"({config.bits_per_value(model.config.head_dim):.1f} bits per cached value)"
    )
    engine = MillionEngine.calibrate(model, calibration, config)

    # 3. Online phase: prefill a prompt and decode with the quantized cache.
    prompt = load_corpus("wikitext2-syn", "test", n_tokens=256)
    generated = engine.generate(prompt, max_new_tokens=32)
    print(f"prompt length: {prompt.size} tokens, generated: {generated.tolist()}")

    # 4. Inspect the cache: most of the context is stored as PQ codes.
    stats = engine.cache_stats()
    print(
        f"context={stats.context_length} tokens  "
        f"quantized={stats.quantized_tokens}  recent(fp)={stats.recent_tokens}"
    )
    print(
        f"KV cache: {stats.memory_bytes / 1024:.1f} KiB vs fp16 "
        f"{stats.fp16_memory_bytes / 1024:.1f} KiB  "
        f"(compression {stats.compression_ratio:.2f}x, codebooks included)"
    )

    # 5. Fidelity check: quantized logits stay close to the fp16 logits.
    engine.reset()
    engine.prefill(prompt[:128])
    quantized_next = engine.decode_step(int(prompt[128]))
    reference_next = engine.baseline_logits(prompt[: 128 + 1])[-1]
    agreement = np.argmax(quantized_next) == np.argmax(reference_next)
    print(f"top-1 prediction matches fp16 after 128 quantized tokens: {bool(agreement)}")


if __name__ == "__main__":
    main()
