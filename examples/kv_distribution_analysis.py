#!/usr/bin/env python
"""Reproduce the paper's KV-distribution motivation study (Figs. 2 and 3).

For two models with different positional embeddings, runs calibration text
through the model, and prints per-channel magnitude and standard-deviation
statistics of the key and value caches — showing that key outliers concentrate
in a few channels while values stay isotropic, which is exactly the structure
product quantization absorbs.

Run with::

    python examples/kv_distribution_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_corpus
from repro.eval import collect_kv_statistics, summarize_outlier_structure
from repro.models import load_model


def sparkline(values: np.ndarray, width: int = 48) -> str:
    """Render a channel profile as a compact ASCII sparkline."""
    blocks = " .:-=+*#%@"
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    top = resampled.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in resampled)


def main() -> None:
    for model_name in ("llama-2-7b-tiny", "mpt-7b-tiny"):
        model = load_model(model_name, seed=0)
        tokens = load_corpus("wikitext2-syn", "validation", 512) % model.config.vocab_size
        stats = collect_kv_statistics(model, tokens, chunk_size=128, layers=[0, model.config.n_layers - 1])
        print(f"\n=== {model_name} ===")
        for stat in stats:
            profile = sparkline(stat.abs_max)
            print(
                f"layer {stat.layer} {stat.kind:5s} |max| per channel: [{profile}] "
                f"outlier ratio {stat.magnitude_outlier_ratio():.1f}x, "
                f"std ratio {stat.std_outlier_ratio():.1f}x, "
                f"top channels {stat.top_channels(3).tolist()}"
            )
        summary = summarize_outlier_structure(stats)
        print(
            "summary: key magnitude outlier ratio "
            f"{summary['key_magnitude_outlier_ratio']:.1f}x vs value "
            f"{summary['value_magnitude_outlier_ratio']:.1f}x ; key std ratio "
            f"{summary['key_std_outlier_ratio']:.1f}x vs value "
            f"{summary['value_std_outlier_ratio']:.1f}x"
        )
    print(
        "\nKeys concentrate their outliers in a handful of channels (hard for"
        " uniform integer quantization); values do not — the Fig. 2/3 observation."
    )


if __name__ == "__main__":
    main()
