#!/usr/bin/env python
"""Continuous-batching demo: many concurrent requests, one calibrated model.

Calibrates MILLION once, then submits a burst of requests with different
prompt lengths and generation budgets to :class:`BatchedMillionEngine`.  The
engine interleaves one decode step per running sequence, admits queued
requests the moment a slot frees up, and streams tokens back per request.
At the end the script verifies the batched output is token-identical to
looping the single-sequence :class:`MillionEngine` over the same prompts,
and reports per-request finish reasons plus aggregate throughput and
``engine.stats()``.

With ``--pool-blocks N`` the engine runs in block-pool mode: every prompt
shares a common system prefix whose quantized KV blocks are allocated from a
bounded :class:`BlockPool` and shared across requests (prefill of the prefix
is paid once; the stats show reused vs computed prefill tokens and pool
utilization).  Making the pool small forces preemption and restore, which
keeps greedy outputs unchanged.

Run with::

    python examples/batched_serving.py [--requests 6] [--batch-size 3]
    python examples/batched_serving.py --pool-blocks 512 --shared-prefix 96
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import MillionConfig, MillionEngine
from repro.data import load_corpus
from repro.models import load_model
from repro.serving import BatchedMillionEngine, BlockPool, PooledMillionCacheFactory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=6, help="number of requests")
    parser.add_argument("--batch-size", type=int, default=3, help="running-set cap")
    parser.add_argument("--max-new-tokens", type=int, default=24)
    parser.add_argument(
        "--pool-blocks",
        type=int,
        default=0,
        help="enable the paged KV block pool with this many blocks (0 = off)",
    )
    parser.add_argument(
        "--block-tokens", type=int, default=16, help="tokens per pool block"
    )
    parser.add_argument(
        "--shared-prefix",
        type=int,
        default=96,
        help="system-prompt tokens shared by every request in pool mode",
    )
    args = parser.parse_args()

    model = load_model("llama-2-7b-tiny", seed=0, max_seq_len=1024)
    vocab = model.config.vocab_size
    calibration = load_corpus("wikitext2-syn", "train", 768) % vocab
    million = MillionConfig.for_equivalent_bits(
        model.config.head_dim, bits=4, kmeans_iters=5, calibration_samples=1536
    )
    print("calibrating MILLION codebooks once for all requests ...")
    sequential = MillionEngine.calibrate(model, calibration, million)

    pooled = args.pool_blocks > 0
    prompts = [
        load_corpus("wikitext2-syn", "test", 32 + 8 * i, seed=i) % vocab
        for i in range(args.requests)
    ]
    if pooled:
        system_prefix = load_corpus("wikitext2-syn", "test", args.shared_prefix, seed=99) % vocab
        prompts = [np.concatenate([system_prefix, prompt]) for prompt in prompts]
        pool = BlockPool.for_model(
            model.config, million, num_blocks=args.pool_blocks,
            block_tokens=args.block_tokens,
        )
        factory = PooledMillionCacheFactory.from_factory(sequential.factory, pool)
    else:
        factory = sequential.factory

    server = BatchedMillionEngine(model, factory, max_batch_size=args.batch_size)
    for i, prompt in enumerate(prompts):
        budget = args.max_new_tokens - 2 * (i % 3)
        server.add_request(prompt, max_new_tokens=budget, request_id=f"user-{i}")

    print(
        f"serving {args.requests} requests with max_batch_size={args.batch_size}"
        + (f" pool_blocks={args.pool_blocks}" if pooled else "")
        + " ..."
    )
    start = time.perf_counter()
    step = 0
    while server.scheduler.has_work:
        outputs = server.step()
        step += 1
        finished = [o.request_id for o in outputs if o.finished]
        if finished:
            print(
                f"  step {step:3d}: running={server.running_count} "
                f"queued={server.queued_count} finished={', '.join(finished)}"
            )
    wall = time.perf_counter() - start

    total_tokens = 0
    for i, prompt in enumerate(prompts):
        state = server.state_of(f"user-{i}")
        total_tokens += len(state.generated)
        line = (
            f"  user-{i}: prompt={prompt.size:3d} tokens "
            f"generated={len(state.generated):2d} "
            f"finish={state.finish_reason.value:9s}"
        )
        if pooled:
            # Block-pool prefill force-quantizes the aligned prompt prefix, so
            # its outputs are self-consistent (shared == cold, a test asserts
            # bit-identity) but intentionally differ from the sequential
            # engine's all-full-precision prefill.  Report reuse instead.
            line += f" preemptions={state.preemptions}"
        else:
            reference = sequential.generate(prompt, max_new_tokens=len(state.generated))
            identical = np.array_equal(reference, state.generated_ids)
            line += f" identical-to-sequential={identical}"
            assert identical, "batched output diverged from sequential greedy"
        print(line)
    print(
        f"served {total_tokens} tokens in {wall:.2f}s "
        f"({total_tokens / wall:.1f} tok/s aggregate)"
    )

    stats = server.stats()
    print("engine stats:")
    for key in (
        "finished",
        "preemptions",
        "prefill_tokens_computed",
        "prefill_tokens_reused",
        "active_cache_memory_bytes",
    ):
        print(f"  {key}: {stats[key]}")
    if stats["pool"] is not None:
        pool_stats = stats["pool"]
        print(
            f"  pool: {pool_stats['used_blocks']}/{pool_stats['num_blocks']} blocks used "
            f"({100 * pool_stats['utilization']:.1f}%), "
            f"{pool_stats['adoptions']} adoptions, "
            f"{pool_stats['evictions']} evictions"
        )


if __name__ == "__main__":
    main()
