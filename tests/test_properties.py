"""Cross-cutting property-based tests (hypothesis) for the core invariants.

These complement the per-module tests with randomized checks of the
invariants the rest of the system relies on:

* quantize/de-quantize round trips stay within their theoretical error bounds,
* PQ's ADC scores are *exactly* the scores of the de-quantized keys,
* streaming caches never lose or duplicate tokens regardless of the append
  pattern, and their attention output is always finite,
* the performance model responds monotonically to context length and bits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MillionConfig, ProductQuantizer
from repro.core.million_cache import MillionKVCacheLayer
from repro.models.config import ModelConfig
from repro.perf import FP16_BASELINE, LLAMA_2_7B, MILLION_4BIT, estimate_tpot, kv_cache_bytes
from repro.quant import KiviConfig, KiviKVCache, quantize_uniform
from repro.quant.kmeans import kmeans


CACHE_CONFIG = ModelConfig(
    vocab_size=64, d_model=32, n_layers=1, n_heads=2, max_seq_len=4096
)

_PQ_VECTORS = np.random.default_rng(1234).normal(size=(2048, 16)).astype(np.float32)
_SHARED_PQ = ProductQuantizer.fit(_PQ_VECTORS, m_subspaces=4, nbits=5, kmeans_iters=6, seed=0)


class TestQuantizationProperties:
    @given(
        nbits=st.integers(min_value=2, max_value=8),
        scale=st.floats(min_value=0.01, max_value=100.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_roundtrip_error_bounded(self, nbits, scale, seed):
        rng = np.random.default_rng(seed)
        x = (rng.normal(size=(32, 8)) * scale).astype(np.float32)
        quantized = quantize_uniform(x, nbits)
        error = np.abs(quantized.dequantize() - x)
        step = float(quantized.params.scale.max())
        assert error.max() <= 0.51 * step + 1e-5 * scale

    @given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_adc_equals_dequantized_scores(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(n, 16)).astype(np.float32)
        queries = rng.normal(size=(3, 16)).astype(np.float32)
        codes = _SHARED_PQ.encode(keys)
        adc = _SHARED_PQ.adc_scores(_SHARED_PQ.build_score_luts(queries), codes)
        exact = queries @ _SHARED_PQ.decode(codes).T
        np.testing.assert_allclose(adc, exact, atol=1e-3)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_pq_reconstruction_never_worse_than_single_centroid(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(64, 16)).astype(np.float32)
        mse_pq = _SHARED_PQ.reconstruction_mse(x)
        global_mean_mse = float(np.mean((x - _PQ_VECTORS.mean(axis=0)) ** 2))
        assert mse_pq <= global_mean_mse * 1.05

    @given(
        k=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=12, max_value=100),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_kmeans_inertia_non_negative_and_bounded(self, k, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        result = kmeans(data, k, seed=seed)
        assert result.inertia >= 0.0
        total_variance = float(np.sum((data - data.mean(axis=0)) ** 2))
        assert result.inertia <= total_variance + 1e-6


class TestStreamingCacheProperties:
    @staticmethod
    def _million_cache(recent_window: int) -> MillionKVCacheLayer:
        config = MillionConfig(m_subspaces=4, nbits=5, recent_window=recent_window)
        return MillionKVCacheLayer(CACHE_CONFIG, _SHARED_PQ, _SHARED_PQ, config)

    @given(
        block_sizes=st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=8),
        recent_window=st.integers(min_value=0, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_million_token_accounting(self, block_sizes, recent_window, seed):
        """stored + pending == appended, and pending covers the recent window."""
        rng = np.random.default_rng(seed)
        cache = self._million_cache(recent_window)
        total = 0
        for size in block_sizes:
            keys = rng.normal(size=(size, 2, 16)).astype(np.float32)
            values = rng.normal(size=(size, 2, 16)).astype(np.float32)
            cache.append(keys, values)
            total += size
            assert cache.stored_tokens + cache.pending_tokens == total == cache.seq_len
            assert cache.pending_tokens >= min(recent_window, total) - max(block_sizes)

    @given(
        block_sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_million_attention_always_finite_and_bounded(self, block_sizes, seed):
        """Attention output is finite and inside the convex hull bound of values."""
        rng = np.random.default_rng(seed)
        cache = self._million_cache(recent_window=4)
        all_values = []
        total = 0
        for size in block_sizes:
            keys = rng.normal(size=(size, 2, 16)).astype(np.float32)
            values = rng.normal(size=(size, 2, 16)).astype(np.float32)
            all_values.append(values)
            cache.append(keys, values)
            total += size
        queries = rng.normal(size=(1, 2, 16)).astype(np.float32)
        out = cache.attend(queries, np.asarray([total - 1]), 0.25)
        assert np.isfinite(out).all()
        stacked = np.concatenate(all_values, axis=0)
        # Softmax-weighted sums of (approximately reconstructed) values cannot
        # stray far outside the range of the true values.
        margin = 3.0 * np.abs(stacked).max()
        assert np.abs(out).max() <= margin

    @given(
        group_size=st.integers(min_value=1, max_value=16),
        residual=st.integers(min_value=0, max_value=16),
        n_blocks=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_kivi_cache_accounting(self, group_size, residual, n_blocks, seed):
        rng = np.random.default_rng(seed)
        cache = KiviKVCache(
            CACHE_CONFIG, KiviConfig(nbits=4, group_size=group_size, residual_length=residual)
        )
        total = 0
        for _ in range(n_blocks):
            size = int(rng.integers(1, 20))
            cache.append(
                rng.normal(size=(size, 2, 16)).astype(np.float32),
                rng.normal(size=(size, 2, 16)).astype(np.float32),
            )
            total += size
        assert cache.stored_tokens + cache.pending_tokens == total
        assert cache.stored_tokens % group_size == 0


class TestPerfModelProperties:
    @given(context=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_kv_bytes_monotone_in_context(self, context):
        smaller = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, context)
        larger = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, context + 128)
        assert larger > smaller

    @given(prefill=st.sampled_from([1024, 2048, 4096, 8192, 16384, 32768]))
    @settings(max_examples=12, deadline=None)
    def test_million_never_slower_than_baseline_beyond_1k(self, prefill):
        """Table IV starts at 1K context; below that the two are within noise."""
        baseline = estimate_tpot(LLAMA_2_7B, FP16_BASELINE, prefill)
        million = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, prefill)
        if not baseline.oom and not million.oom:
            assert million.tpot_ms <= baseline.tpot_ms * 1.02
