"""Tests for offline calibration, the engine and the async pipeline bookkeeping."""

import numpy as np
import pytest

from repro.core import (
    AsyncQuantizationStream,
    DecodePipelineRecorder,
    MillionConfig,
    MillionEngine,
    calibrate_kvquant,
    collect_kv_samples,
    train_kvquant_quantizers,
    train_million_quantizers,
)
from repro.core.million_cache import MillionKVCacheLayer
from repro.models.kv_cache import FullPrecisionCacheFactory, FullPrecisionKVCacheLayer


class TestKVSampleCollection:
    def test_sample_counts_and_shapes(self, tiny_model, calibration_tokens, kv_samples):
        config = tiny_model.config
        for layer in range(config.n_layers):
            assert kv_samples.sample_count(layer) > 0
            key_vectors = kv_samples.key_vectors(layer)
            assert key_vectors.shape[1] == config.head_dim
            key_channels = kv_samples.key_channels(layer)
            assert key_channels.shape[1] == config.kv_dim

    def test_collection_restores_model_state(self, tiny_model, calibration_tokens):
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        collect_kv_samples(tiny_model, calibration_tokens[:64], chunk_size=32)
        assert tiny_model.context_length == 0
        assert not tiny_model.kv_observers
        assert isinstance(tiny_model.caches[0], FullPrecisionKVCacheLayer)

    def test_multiple_streams(self, tiny_model):
        streams = [np.arange(40) % 128, np.arange(40, 120) % 128]
        collector = collect_kv_samples(tiny_model, streams, chunk_size=16)
        assert collector.sample_count(0) == 120 * tiny_model.config.kv_heads

    def test_subsampling_cap(self, tiny_model, calibration_tokens):
        collector = collect_kv_samples(
            tiny_model, calibration_tokens, chunk_size=64, max_samples_per_layer=50
        )
        assert collector.key_vectors(0).shape[0] == 50


class TestQuantizerTraining:
    def test_million_quantizers_cover_layers(self, kv_samples, million_config, tiny_model):
        quantizers = train_million_quantizers(kv_samples, million_config)
        assert set(quantizers) == set(range(tiny_model.config.n_layers))
        key_pq, value_pq = quantizers[0]
        assert key_pq.dim == tiny_model.config.head_dim
        assert key_pq.m_subspaces == million_config.m_subspaces

    def test_kvquant_quantizers_fitted(self, kv_samples, tiny_model):
        quantizers = train_kvquant_quantizers(kv_samples, nbits=4)
        assert all(q.is_fitted for q in quantizers.values())

    def test_kvquant_factory_end_to_end(self, tiny_model, calibration_tokens, test_tokens):
        factory = calibrate_kvquant(
            tiny_model, calibration_tokens, nbits=4, max_samples_per_layer=512
        )
        tiny_model.reset_cache(factory)
        logits = np.concatenate(
            [tiny_model.forward(test_tokens[i : i + 32]) for i in range(0, 128, 32)]
        )
        assert np.isfinite(logits).all()
        tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestMillionEngine:
    @pytest.fixture(scope="class")
    def engine(self, tiny_model, calibration_tokens, million_config):
        return MillionEngine.calibrate(tiny_model, calibration_tokens, million_config)

    def test_generation_runs_and_is_deterministic(self, engine, test_tokens):
        out_a = engine.generate(test_tokens[:48], max_new_tokens=8)
        out_b = engine.generate(test_tokens[:48], max_new_tokens=8)
        np.testing.assert_array_equal(out_a, out_b)
        assert out_a.shape == (8,)

    def test_prefill_then_decode(self, engine, test_tokens):
        engine.reset()
        logits = engine.prefill(test_tokens[:32])
        assert logits.shape == (32, engine.model.config.vocab_size)
        step = engine.decode_step(int(test_tokens[32]))
        assert step.shape == (engine.model.config.vocab_size,)

    def test_cache_stats(self, engine, test_tokens):
        engine.reset()
        engine.prefill(test_tokens[:64])
        engine.decode_step(3)
        stats = engine.cache_stats()
        assert stats.context_length == 65
        assert stats.quantized_tokens + stats.recent_tokens == 65
        assert stats.fp16_memory_bytes > 0
        assert stats.compression_ratio > 0

    def test_caches_are_million_layers(self, engine):
        assert all(isinstance(c, MillionKVCacheLayer) for c in engine.model.caches)

    def test_quantization_changes_logits_only_for_older_tokens(self, engine, test_tokens):
        """Within one prefill block nothing is quantized yet, so logits match fp16."""
        engine.reset()
        quantized = engine.prefill(test_tokens[:16])
        engine.reset()
        baseline = engine.baseline_logits(test_tokens[:16])
        np.testing.assert_allclose(quantized, baseline, atol=1e-4)

    def test_quantized_decode_diverges_but_stays_close(self, engine, test_tokens):
        engine.reset()
        engine.prefill(test_tokens[:64])
        quantized = engine.decode_step(int(test_tokens[64]))
        engine.reset()
        reference = engine.baseline_logits(test_tokens[:65])[-1]
        assert not np.allclose(quantized, reference)
        corr = np.corrcoef(quantized, reference)[0, 1]
        assert corr > 0.98

    def test_baseline_logits_leaves_context_and_factory_untouched(self, engine, test_tokens):
        """baseline_logits must not disturb the live caches, position or factory."""
        engine.reset()
        engine.prefill(test_tokens[:24])
        caches_before = engine.model.caches
        position_before = engine.model.context_length
        factory_before = engine.model.cache_factory
        engine.baseline_logits(test_tokens[:16])
        assert engine.model.caches is caches_before
        assert engine.model.context_length == position_before
        assert engine.model.cache_factory is factory_before

    def test_default_config_choice(self, tiny_model, calibration_tokens):
        engine = MillionEngine.calibrate(tiny_model, calibration_tokens[:128])
        assert engine.million_config.bits_per_value(tiny_model.config.head_dim) == pytest.approx(4.0)


class TestAsyncPipeline:
    def test_jobs_complete_before_deadline(self):
        stream = AsyncQuantizationStream(enabled=True)
        stream.submit(step=0, n_tokens=1)
        completed = stream.advance(step=1)
        assert len(completed) == 1 and completed[0].is_complete

    def test_missed_deadline_detected(self):
        stream = AsyncQuantizationStream(enabled=True)
        stream.submit(step=0, n_tokens=1)
        with pytest.raises(RuntimeError):
            stream.advance(step=3)

    def test_zero_token_jobs_ignored(self):
        stream = AsyncQuantizationStream(enabled=True)
        stream.submit(step=0, n_tokens=0)
        assert stream.trace.jobs == []

    def test_recorder_traces_decode(self, tiny_model, million_factory, test_tokens):
        tiny_model.reset_cache(million_factory)
        tiny_model.prefill(test_tokens[:32])
        recorder = DecodePipelineRecorder(tiny_model)
        token = int(test_tokens[32])
        for step in range(5):
            recorder.before_step(step)
            logits = tiny_model.decode_step(token)
            token = int(np.argmax(logits))
            recorder.after_step(step)
        trace = recorder.stream.trace
        assert len(trace.steps) == 5
        assert trace.total_tokens_quantized() > 0
        assert trace.max_pending_tokens() >= tiny_model.config.n_layers
        tiny_model.reset_cache(FullPrecisionCacheFactory())
