"""Tests for PQ attention and the MILLION KV cache."""

import numpy as np
import pytest

from repro.core.attention_pq import pq_attention_scores, pq_sparse_attention, pq_weighted_values
from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory, MillionKVCacheLayer
from repro.core.pq import ProductQuantizer
from repro.models.attention_math import dense_attention, repeat_kv_heads
from repro.models.config import ModelConfig
from repro.models.tensor_ops import OnlineSoftmaxState, softmax


@pytest.fixture(scope="module")
def head_dim():
    return 16


@pytest.fixture(scope="module")
def pq_pair(head_dim):
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(3000, head_dim)).astype(np.float32)
    keys[:, 2] *= 6.0
    values = rng.normal(size=(3000, head_dim)).astype(np.float32)
    key_pq = ProductQuantizer.fit(keys, m_subspaces=8, nbits=6, seed=0)
    value_pq = ProductQuantizer.fit(values, m_subspaces=8, nbits=6, seed=1)
    return key_pq, value_pq


@pytest.fixture()
def mha_config(head_dim):
    return ModelConfig(vocab_size=64, d_model=2 * head_dim, n_layers=1, n_heads=2, max_seq_len=512)


@pytest.fixture()
def gqa_cache_config(head_dim):
    return ModelConfig(
        vocab_size=64,
        d_model=4 * head_dim,
        n_layers=1,
        n_heads=4,
        n_kv_heads=2,
        max_seq_len=512,
    )


def _random_kv(rng, n_tokens, kv_heads, head_dim):
    keys = rng.normal(size=(n_tokens, kv_heads, head_dim)).astype(np.float32)
    keys[:, :, 2] *= 6.0
    values = rng.normal(size=(n_tokens, kv_heads, head_dim)).astype(np.float32)
    return keys, values


class TestPQAttentionPrimitives:
    def test_scores_match_dequantized_attention(self, pq_pair, head_dim):
        key_pq, _ = pq_pair
        rng = np.random.default_rng(1)
        keys, _ = _random_kv(rng, 20, 2, head_dim)
        codes = key_pq.encode(keys.reshape(-1, head_dim)).reshape(20, 2, -1)
        queries = rng.normal(size=(3, 2, head_dim)).astype(np.float32)
        scores = pq_attention_scores(queries, codes, key_pq, scale=0.3)
        decoded = key_pq.decode(codes.reshape(-1, key_pq.m_subspaces)).reshape(20, 2, head_dim)
        expected = np.einsum("qhd,khd->hqk", queries, decoded) * 0.3
        np.testing.assert_allclose(scores, expected, atol=1e-4)

    def test_weighted_values_match_dequantized(self, pq_pair, head_dim):
        _, value_pq = pq_pair
        rng = np.random.default_rng(2)
        _, values = _random_kv(rng, 15, 2, head_dim)
        codes = value_pq.encode(values.reshape(-1, head_dim)).reshape(15, 2, -1)
        probs = softmax(rng.normal(size=(2, 4, 15)), axis=-1)
        context = pq_weighted_values(probs, codes, value_pq)
        decoded = value_pq.decode(codes.reshape(-1, value_pq.m_subspaces)).reshape(15, 2, head_dim)
        expected = np.einsum("hqk,khd->qhd", probs, decoded)
        np.testing.assert_allclose(context, expected, atol=1e-4)

    def test_gqa_head_mapping(self, pq_pair, head_dim):
        key_pq, _ = pq_pair
        rng = np.random.default_rng(3)
        keys, _ = _random_kv(rng, 10, 2, head_dim)
        codes = key_pq.encode(keys.reshape(-1, head_dim)).reshape(10, 2, -1)
        queries = rng.normal(size=(1, 4, head_dim)).astype(np.float32)
        scores = pq_attention_scores(queries, codes, key_pq, scale=1.0)
        decoded = key_pq.decode(codes.reshape(-1, key_pq.m_subspaces)).reshape(10, 2, head_dim)
        expanded = repeat_kv_heads(decoded, 4)
        expected = np.einsum("qhd,khd->hqk", queries, expanded)
        np.testing.assert_allclose(scores, expected, atol=1e-4)

    def test_sparse_attention_wrapper(self, pq_pair, head_dim):
        key_pq, value_pq = pq_pair
        rng = np.random.default_rng(4)
        keys, values = _random_kv(rng, 12, 2, head_dim)
        key_codes = key_pq.encode(keys.reshape(-1, head_dim)).reshape(12, 2, -1)
        value_codes = value_pq.encode(values.reshape(-1, head_dim)).reshape(12, 2, -1)
        queries = rng.normal(size=(2, 2, head_dim)).astype(np.float32)
        scores, context = pq_sparse_attention(
            queries, key_codes, value_codes, key_pq, value_pq, scale=0.25
        )
        assert scores.shape == (2, 2, 12)
        assert context.shape == (2, 2, head_dim)

    def test_shape_validation(self, pq_pair, head_dim):
        key_pq, value_pq = pq_pair
        with pytest.raises(Exception):
            pq_attention_scores(np.zeros((2, head_dim)), np.zeros((3, 2, 8)), key_pq)
        with pytest.raises(Exception):
            pq_weighted_values(np.zeros((2, 2, 5)), np.zeros((4, 2, 8), dtype=int), value_pq)


class TestMillionKVCacheLayer:
    def _make_cache(self, config, pq_pair, recent_window=0, outlier_fraction=0.0):
        key_pq, value_pq = pq_pair
        million = MillionConfig(
            m_subspaces=key_pq.m_subspaces,
            nbits=key_pq.nbits,
            recent_window=recent_window,
            outlier_fraction=outlier_fraction,
        )
        return MillionKVCacheLayer(config, key_pq, value_pq, million)

    def test_attention_approximates_exact(self, mha_config, pq_pair, head_dim):
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(5)
        keys, values = _random_kv(rng, 48, 2, head_dim)
        cache.append(keys[:32], values[:32])
        cache.append(keys[32:], values[32:])
        queries = rng.normal(size=(2, 2, head_dim)).astype(np.float32)
        q_pos = np.asarray([46, 47])
        out = cache.attend(queries, q_pos, 0.25)
        exact = dense_attention(queries, keys, values, q_pos, np.arange(48), 0.25)
        assert np.abs(out - exact).max() < 0.35
        # The quantized part must actually be in use.
        assert cache.stored_tokens == 32 and cache.pending_tokens == 16

    def test_matches_dequantized_reference_exactly(self, mha_config, pq_pair, head_dim):
        """ADC attention == attention over the PQ-reconstructed KV (no extra error)."""
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(6)
        keys, values = _random_kv(rng, 40, 2, head_dim)
        cache.append(keys[:30], values[:30])
        cache.append(keys[30:], values[30:])
        queries = rng.normal(size=(1, 2, head_dim)).astype(np.float32)
        out = cache.attend(queries, np.asarray([39]), 0.25)
        k_hat, v_hat = cache.dequantized_kv()
        keys_mixed = np.concatenate([k_hat, keys[30:]], axis=0)
        values_mixed = np.concatenate([v_hat, values[30:]], axis=0)
        expected = dense_attention(
            queries, keys_mixed, values_mixed, np.asarray([39]), np.arange(40), 0.25
        )
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_equivalent_to_online_softmax_merge(self, mha_config, pq_pair, head_dim):
        """Concatenated-softmax implementation == Eq. (7) online-softmax merge."""
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(7)
        keys, values = _random_kv(rng, 33, 2, head_dim)
        cache.append(keys[:32], values[:32])
        cache.append(keys[32:], values[32:])
        queries = rng.normal(size=(1, 2, head_dim)).astype(np.float32)
        scale = 0.25
        out = cache.attend(queries, np.asarray([32]), scale)

        # Reproduce via explicit online-softmax merge of the two partials.
        k_hat, v_hat = cache.dequantized_kv()
        state = OnlineSoftmaxState((2, 1), head_dim)
        past_scores = np.einsum("qhd,khd->hqk", queries, k_hat) * scale
        past_values = np.einsum("khd->hkd", v_hat)[:, None, :, :]  # (heads, 1, keys, dim)
        state.update(past_scores, past_values)
        recent_scores = np.einsum("qhd,khd->hqk", queries, keys[32:]) * scale
        recent_values = np.einsum("khd->hkd", values[32:])[:, None, :, :]
        state.update(recent_scores, recent_values)
        merged = np.swapaxes(state.finalize(), 0, 1)  # -> (queries, heads, dim)
        np.testing.assert_allclose(out, merged, atol=1e-4)

    def test_recent_window_kept_full_precision(self, mha_config, pq_pair, head_dim):
        cache = self._make_cache(mha_config, pq_pair, recent_window=16)
        rng = np.random.default_rng(8)
        keys, values = _random_kv(rng, 40, 2, head_dim)
        for start in range(0, 40, 8):
            cache.append(keys[start : start + 8], values[start : start + 8])
        assert cache.pending_tokens >= 16
        assert cache.stored_tokens + cache.pending_tokens == 40

    def test_gqa_cache(self, gqa_cache_config, pq_pair, head_dim):
        cache = self._make_cache(gqa_cache_config, pq_pair)
        rng = np.random.default_rng(9)
        keys, values = _random_kv(rng, 24, 2, head_dim)
        cache.append(keys[:16], values[:16])
        cache.append(keys[16:], values[16:])
        queries = rng.normal(size=(2, 4, head_dim)).astype(np.float32)
        out = cache.attend(queries, np.asarray([22, 23]), 0.25)
        exact = dense_attention(queries, keys, values, np.asarray([22, 23]), np.arange(24), 0.25)
        assert out.shape == (2, 4, head_dim)
        assert np.abs(out - exact).max() < 0.4

    def test_memory_much_smaller_than_fp16(self, mha_config, pq_pair, head_dim):
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(10)
        keys, values = _random_kv(rng, 256, 2, head_dim)
        cache.append(keys[:255], values[:255])
        cache.append(keys[255:], values[255:])
        fp16_bytes = 256 * 2 * 2 * head_dim * 2.0
        code_bytes = cache.quantized_memory_bytes() - 2 * cache.key_pq.codebook_memory_bytes()
        assert code_bytes < fp16_bytes / 3.0

    def test_outlier_corrections_reduce_error(self, mha_config, pq_pair, head_dim):
        rng = np.random.default_rng(11)
        keys, values = _random_kv(rng, 64, 2, head_dim)
        keys[rng.random(keys.shape) < 0.02] *= 25.0
        queries = rng.normal(size=(1, 2, head_dim)).astype(np.float32)
        q_pos = np.asarray([63])
        exact = dense_attention(queries, keys, values, q_pos, np.arange(64), 0.25)

        def run(outlier_fraction):
            cache = self._make_cache(mha_config, pq_pair, outlier_fraction=outlier_fraction)
            cache.append(keys[:60], values[:60])
            cache.append(keys[60:], values[60:])
            return cache.attend(queries, q_pos, 0.25)

        err_plain = np.abs(run(0.0) - exact).max()
        err_outlier = np.abs(run(0.02) - exact).max()
        assert err_outlier <= err_plain + 1e-6

    def test_sparse_corrections_materialize_is_zero_copy(self, mha_config, pq_pair, head_dim):
        """materialize() must read contiguous stores, not re-concatenate."""
        from repro.core.million_cache import _SparseCorrections

        corrections = _SparseCorrections()
        rng = np.random.default_rng(13)
        block = np.zeros((4, 2, head_dim), dtype=np.float32)
        block[rng.random(block.shape) < 0.2] = 1.5
        corrections.add_block(0, block)
        first = corrections.materialize()
        assert all(part.base is not None for part in first)  # views, no copies
        corrections.add_block(4, block)
        second = corrections.materialize()
        assert second[0].size == 2 * first[0].size == corrections.count
        tokens, heads, channels = np.nonzero(block)
        np.testing.assert_array_equal(second[0][tokens.size :], tokens + 4)
        np.testing.assert_array_equal(
            second[3], np.tile(block[tokens, heads, channels], 2)
        )
        corrections.clear()
        assert corrections.materialize()[0].size == 0

    def test_stored_codes_are_views_not_copies(self, mha_config, pq_pair, head_dim):
        """Decode-path reads must be zero-copy views of the contiguous store."""
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(14)
        keys, values = _random_kv(rng, 48, 2, head_dim)
        cache.append(keys[:32], values[:32])
        cache.append(keys[32:], values[32:])
        codes = cache._stored_key_codes()
        assert codes.base is not None  # a view into the growable buffer
        assert codes.shape[0] == cache.stored_tokens
        # Repeated reads return the same buffer, not fresh concatenations.
        assert cache._stored_key_codes().base is codes.base

    def test_reset(self, mha_config, pq_pair, head_dim):
        cache = self._make_cache(mha_config, pq_pair)
        rng = np.random.default_rng(12)
        keys, values = _random_kv(rng, 16, 2, head_dim)
        cache.append(keys[:8], values[:8])
        cache.append(keys[8:], values[8:])
        cache.reset()
        assert cache.seq_len == 0 and cache.stored_tokens == 0 and cache.pending_tokens == 0

    def test_dimension_mismatch_rejected(self, pq_pair):
        key_pq, value_pq = pq_pair
        bad_config = ModelConfig(vocab_size=64, d_model=64, n_layers=1, n_heads=2, max_seq_len=64)
        million = MillionConfig(m_subspaces=8, nbits=6)
        with pytest.raises(Exception):
            MillionKVCacheLayer(bad_config, key_pq, value_pq, million)


class TestMillionCacheFactory:
    def test_create_and_missing_layer(self, mha_config, pq_pair):
        key_pq, value_pq = pq_pair
        million = MillionConfig(m_subspaces=key_pq.m_subspaces, nbits=key_pq.nbits)
        factory = MillionCacheFactory({0: (key_pq, value_pq)}, million)
        assert isinstance(factory.create(0, mha_config), MillionKVCacheLayer)
        with pytest.raises(KeyError):
            factory.create(3, mha_config)

    def test_bits_per_value(self, pq_pair, head_dim):
        key_pq, value_pq = pq_pair
        million = MillionConfig(m_subspaces=key_pq.m_subspaces, nbits=key_pq.nbits)
        factory = MillionCacheFactory({0: (key_pq, value_pq)}, million)
        assert factory.bits_per_value(head_dim) == pytest.approx(8 * 6 / head_dim)
