"""Tests for PQ codebooks, encode/decode, ADC and weighted decode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codebook import SubspaceCodebooks, train_codebooks
from repro.core.config import MillionConfig
from repro.core.pq import ProductQuantizer


@pytest.fixture(scope="module")
def calibration_vectors():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(2000, 32)).astype(np.float32)
    vectors[:, 5] *= 6.0  # outlier channel
    return vectors


@pytest.fixture(scope="module")
def pq(calibration_vectors):
    return ProductQuantizer.fit(calibration_vectors, m_subspaces=8, nbits=6, seed=0)


class TestCodebooks:
    def test_training_shapes(self, calibration_vectors):
        codebooks = train_codebooks(calibration_vectors, m_subspaces=8, nbits=5, seed=0)
        assert codebooks.centroids.shape == (8, 32, 4)
        assert codebooks.m_subspaces == 8
        assert codebooks.n_centroids == 32
        assert codebooks.subspace_dim == 4
        assert codebooks.dim == 32
        assert codebooks.nbits == 5

    def test_memory_bytes(self, calibration_vectors):
        codebooks = train_codebooks(calibration_vectors, 4, 4, seed=0)
        assert codebooks.memory_bytes() == 4 * 16 * 8 * 2.0

    def test_split_vectors_validation(self, calibration_vectors):
        codebooks = train_codebooks(calibration_vectors, 4, 4, seed=0)
        with pytest.raises(Exception):
            codebooks.split_vectors(np.zeros((3, 16), dtype=np.float32))

    def test_npz_roundtrip(self, calibration_vectors):
        codebooks = train_codebooks(calibration_vectors, 4, 4, seed=0)
        restored = SubspaceCodebooks.from_npz_dict(codebooks.to_npz_dict())
        np.testing.assert_array_equal(restored.centroids, codebooks.centroids)

    def test_dim_not_divisible_rejected(self, calibration_vectors):
        with pytest.raises(Exception):
            train_codebooks(calibration_vectors, m_subspaces=5, nbits=4)

    def test_max_samples_subsampling(self, calibration_vectors):
        codebooks = train_codebooks(calibration_vectors, 4, 4, seed=0, max_samples=256)
        assert codebooks.centroids.shape == (4, 16, 8)


class TestEncodeDecode:
    def test_code_shape_and_range(self, pq, calibration_vectors):
        codes = pq.encode(calibration_vectors[:100])
        assert codes.shape == (100, 8)
        assert codes.max() < 64

    def test_reconstruction_better_than_zero(self, pq, calibration_vectors):
        x = calibration_vectors[:300]
        mse = pq.reconstruction_mse(x)
        assert mse < np.mean(x.astype(np.float64) ** 2)

    def test_decode_of_encode_is_nearest_centroid(self, pq, calibration_vectors):
        """Each decoded subvector must be the closest centroid to the input."""
        x = calibration_vectors[:20]
        decoded = pq.quantize(x)
        dsub = pq.subspace_dim
        for m in range(pq.m_subspaces):
            sub_x = x[:, m * dsub : (m + 1) * dsub]
            sub_hat = decoded[:, m * dsub : (m + 1) * dsub]
            distances = np.linalg.norm(
                sub_x[:, None, :] - pq.codebooks.centroids[m][None, :, :], axis=-1
            )
            best = distances.min(axis=1)
            achieved = np.linalg.norm(sub_x - sub_hat, axis=-1)
            np.testing.assert_allclose(achieved, best, atol=1e-5)

    def test_more_subspaces_reduce_error(self, calibration_vectors):
        coarse = ProductQuantizer.fit(calibration_vectors, 4, 6, seed=0)
        fine = ProductQuantizer.fit(calibration_vectors, 16, 6, seed=0)
        x = calibration_vectors[:200]
        assert fine.reconstruction_mse(x) < coarse.reconstruction_mse(x)

    def test_bits_per_value(self, pq):
        assert pq.bits_per_value() == pytest.approx(8 * 6 / 32)

    def test_code_memory_bytes_uses_bit_packing(self, pq):
        assert pq.code_memory_bytes(100) == pytest.approx((100 * 8 * 6 + 7) // 8)

    def test_bad_code_shape(self, pq):
        with pytest.raises(Exception):
            pq.decode(np.zeros((4, 5), dtype=np.int64))


class TestADC:
    def test_adc_equals_dequantized_dot_products(self, pq, calibration_vectors):
        """The core MILLION identity: LUT gathers == q · decode(codes)ᵀ."""
        rng = np.random.default_rng(1)
        codes = pq.encode(calibration_vectors[:64])
        queries = rng.normal(size=(5, 32)).astype(np.float32)
        luts = pq.build_score_luts(queries)
        adc = pq.adc_scores(luts, codes)
        exact = queries @ pq.decode(codes).T
        np.testing.assert_allclose(adc, exact, atol=1e-4)

    def test_adc_gather_bit_identical_to_subspace_loop(self, pq, calibration_vectors):
        """The take-based gather must match the naive per-subspace loop bitwise."""
        rng = np.random.default_rng(7)
        codes = pq.encode(calibration_vectors[:300])
        queries = rng.normal(size=(4, 32)).astype(np.float32)
        luts = pq.build_score_luts(queries)
        reference = np.zeros((4, codes.shape[0]), dtype=np.float32)
        for m in range(pq.m_subspaces):
            reference += luts[:, m, :][:, codes[:, m]]
        np.testing.assert_array_equal(pq.adc_scores(luts, codes), reference)

    def test_adc_scores_empty_keys(self, pq):
        luts = np.zeros((3, pq.m_subspaces, pq.n_centroids), dtype=np.float32)
        codes = np.zeros((0, pq.m_subspaces), dtype=np.uint8)
        assert pq.adc_scores(luts, codes).shape == (3, 0)

    def test_single_query_shapes(self, pq, calibration_vectors):
        codes = pq.encode(calibration_vectors[:10])
        query = np.random.default_rng(2).normal(size=32).astype(np.float32)
        lut = pq.build_score_luts(query)
        assert lut.shape == (8, 64)
        scores = pq.adc_scores(lut, codes)
        assert scores.shape == (10,)

    def test_weighted_decode_equals_naive(self, pq, calibration_vectors):
        """Aggregating probabilities per centroid == probs @ decode(codes)."""
        rng = np.random.default_rng(3)
        codes = pq.encode(calibration_vectors[:40])
        probs = rng.random((6, 40)).astype(np.float32)
        fast = pq.weighted_decode(probs, codes)
        naive = probs @ pq.decode(codes)
        np.testing.assert_allclose(fast, naive, atol=1e-4)

    def test_weighted_decode_single_query(self, pq, calibration_vectors):
        codes = pq.encode(calibration_vectors[:7])
        probs = np.random.default_rng(4).random(7).astype(np.float32)
        out = pq.weighted_decode(probs, codes)
        assert out.shape == (32,)

    def test_shape_mismatches_rejected(self, pq, calibration_vectors):
        codes = pq.encode(calibration_vectors[:4])
        with pytest.raises(Exception):
            pq.adc_scores(np.zeros((2, 7, 64), dtype=np.float32), codes)
        with pytest.raises(Exception):
            pq.weighted_decode(np.zeros((2, 9), dtype=np.float32), codes)

    @given(
        n_keys=st.integers(min_value=1, max_value=40),
        n_queries=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_adc_identity_property(self, pq, calibration_vectors, n_keys, n_queries, seed):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(n_keys, 32)).astype(np.float32)
        queries = rng.normal(size=(n_queries, 32)).astype(np.float32)
        codes = pq.encode(keys)
        adc = pq.adc_scores(pq.build_score_luts(queries), codes)
        np.testing.assert_allclose(adc, queries @ pq.decode(codes).T, atol=1e-3)


class TestMillionConfig:
    def test_equivalent_bits_presets(self):
        cfg4 = MillionConfig.for_equivalent_bits(128, 4)
        assert (cfg4.m_subspaces, cfg4.nbits) == (64, 8)
        assert cfg4.bits_per_value(128) == pytest.approx(4.0)
        cfg3 = MillionConfig.for_equivalent_bits(128, 3)
        assert (cfg3.m_subspaces, cfg3.nbits) == (32, 12)
        assert cfg3.bits_per_value(128) == pytest.approx(3.0)

    def test_small_head_dim(self):
        cfg = MillionConfig.for_equivalent_bits(64, 4)
        assert cfg.bits_per_value(64) == pytest.approx(4.0)

    def test_validate_for_model(self, tiny_config):
        good = MillionConfig(m_subspaces=tiny_config.head_dim // 2, nbits=8)
        good.validate_for_model(tiny_config)
        bad = MillionConfig(m_subspaces=tiny_config.head_dim - 1, nbits=8)
        with pytest.raises(Exception):
            bad.validate_for_model(tiny_config)

    def test_invalid_fields(self):
        with pytest.raises(Exception):
            MillionConfig(m_subspaces=0)
        with pytest.raises(Exception):
            MillionConfig(nbits=0)
        with pytest.raises(Exception):
            MillionConfig(outlier_fraction=1.5)

    def test_with_updates(self):
        cfg = MillionConfig(m_subspaces=16, nbits=8)
        assert cfg.with_updates(recent_window=64).recent_window == 64
        assert cfg.recent_window == 0

    def test_unknown_bit_budget(self):
        with pytest.raises(Exception):
            MillionConfig.for_equivalent_bits(128, 5)
