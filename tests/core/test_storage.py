"""Property tests for the contiguous storage layer (CodeStore / PendingBuffer).

The storage refactor replaced list-of-blocks + per-step ``np.concatenate``
with preallocated growable arrays; these tests pin down that the new layer is
an exact drop-in: every read must equal what concatenating the appended
blocks would have produced, across resets, residual windows and grouped
flushing.  A regression test at the bottom asserts the streaming caches'
``attend`` output is bit-identical to a reimplementation of the old
concatenate-per-step algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MillionConfig
from repro.core.million_cache import MillionKVCacheLayer
from repro.core.pq import ProductQuantizer
from repro.core.storage import BlockArena, CodeStore, PendingBuffer
from repro.models.attention_math import attention_scores, repeat_kv_heads
from repro.models.config import ModelConfig
from repro.models.tensor_ops import softmax
from repro.quant.cache_adapters import KiviKVCache
from repro.quant.kivi import KiviConfig


class TestCodeStore:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.float32])
    def test_append_view_matches_concatenate(self, dtype):
        rng = np.random.default_rng(0)
        store = CodeStore((2, 8), dtype, initial_capacity=4)
        blocks = []
        for t in (1, 3, 0, 7, 16, 2):
            block = (rng.random((t, 2, 8)) * 100).astype(dtype)
            blocks.append(block)
            store.append(block)
            expected = np.concatenate(blocks, axis=0)
            np.testing.assert_array_equal(store.view(), expected)
            assert len(store) == expected.shape[0]

    def test_view_is_zero_copy(self):
        store = CodeStore((2, 4), np.uint8)
        store.append(np.ones((5, 2, 4), dtype=np.uint8))
        view = store.view()
        assert view.base is not None  # a view, not an owned copy
        assert view.shape == (5, 2, 4)

    def test_amortized_doubling_growth(self):
        store = CodeStore((1,), np.uint8, initial_capacity=2)
        reallocations = 0
        last_capacity = store.capacity
        for _ in range(1024):
            store.append(np.zeros((1, 1), dtype=np.uint8))
            if store.capacity != last_capacity:
                reallocations += 1
                last_capacity = store.capacity
        # 1024 appends must trigger only O(log n) buffer reallocations.
        assert reallocations <= 12

    def test_appended_block_is_copied(self):
        store = CodeStore((2,), np.float32)
        block = np.ones((3, 2), dtype=np.float32)
        store.append(block)
        block[:] = -1.0  # mutating the source must not affect the store
        np.testing.assert_array_equal(store.view(), np.ones((3, 2), np.float32))

    def test_clear_keeps_allocation(self):
        store = CodeStore((2,), np.uint8, initial_capacity=4)
        store.append(np.zeros((100, 2), dtype=np.uint8))
        capacity = store.capacity
        store.clear()
        assert len(store) == 0 and store.capacity == capacity
        store.append(np.ones((3, 2), dtype=np.uint8))
        np.testing.assert_array_equal(store.view(), np.ones((3, 2), np.uint8))

    def test_pop_front_matches_slicing(self):
        rng = np.random.default_rng(6)
        store = CodeStore((3,), np.float32, initial_capacity=2)
        block = rng.normal(size=(10, 3)).astype(np.float32)
        store.append(block)
        popped = store.pop_front(4)
        np.testing.assert_array_equal(popped, block[:4])
        np.testing.assert_array_equal(store.view(), block[4:])
        assert store.pop_front(0).shape == (0, 3)
        with pytest.raises(Exception):
            store.pop_front(7)

    def test_bad_row_shape_rejected(self):
        store = CodeStore((2, 4), np.uint8)
        with pytest.raises(Exception):
            store.append(np.zeros((3, 2, 5), dtype=np.uint8))
        with pytest.raises(Exception):
            store.append(np.zeros((2, 4), dtype=np.uint8))  # missing token axis


class TestBlockArena:
    def test_write_read_roundtrip_and_zero_copy(self):
        arena = BlockArena(num_blocks=4, block_rows=8, row_shape=(2, 4), dtype=np.uint8)
        block = np.arange(8 * 2 * 4, dtype=np.uint8).reshape(8, 2, 4)
        arena.write(2, block)
        view = arena.read(2)
        np.testing.assert_array_equal(view, block)
        assert view.base is not None  # a view into the slab, not a copy
        assert arena.block_nbytes == block.nbytes

    def test_partial_blocks_rejected(self):
        arena = BlockArena(num_blocks=2, block_rows=8, row_shape=(2, 4), dtype=np.uint8)
        with pytest.raises(Exception, match="shape"):
            arena.write(0, np.zeros((5, 2, 4), dtype=np.uint8))

    def test_block_id_bounds_checked(self):
        arena = BlockArena(num_blocks=2, block_rows=4, row_shape=(1,), dtype=np.uint8)
        with pytest.raises(Exception, match="out of range"):
            arena.read(2)
        with pytest.raises(Exception, match="out of range"):
            arena.write(-1, np.zeros((4, 1), dtype=np.uint8))

    def test_preallocated_capacity_is_fixed(self):
        arena = BlockArena(num_blocks=3, block_rows=4, row_shape=(2,), dtype=np.uint16)
        assert arena.num_blocks == 3
        assert arena.block_rows == 4
        assert arena.dtype == np.dtype(np.uint16)


class TestPendingBuffer:
    def _random_block(self, rng, t, kv_heads=2, head_dim=4):
        return (
            rng.normal(size=(t, kv_heads, head_dim)).astype(np.float32),
            rng.normal(size=(t, kv_heads, head_dim)).astype(np.float32),
        )

    def test_append_pop_matches_list_reference(self):
        """Randomized append/pop interleavings equal the list+concatenate model."""
        rng = np.random.default_rng(1)
        buffer = PendingBuffer(2, 4, initial_capacity=2)
        ref_keys: list[np.ndarray] = []
        ref_values: list[np.ndarray] = []
        for _ in range(200):
            if rng.random() < 0.6 or not ref_keys:
                keys, values = self._random_block(rng, int(rng.integers(0, 5)))
                buffer.append(keys, values)
                ref_keys.append(keys)
                ref_values.append(values)
            else:
                all_keys = np.concatenate(ref_keys, axis=0)
                all_values = np.concatenate(ref_values, axis=0)
                n = int(rng.integers(0, all_keys.shape[0] + 1))
                popped_k, popped_v = buffer.pop_front(n)
                np.testing.assert_array_equal(popped_k, all_keys[:n])
                np.testing.assert_array_equal(popped_v, all_values[:n])
                ref_keys = [all_keys[n:]]
                ref_values = [all_values[n:]]
            expected_k = (
                np.concatenate(ref_keys, axis=0)
                if ref_keys
                else np.zeros((0, 2, 4), np.float32)
            )
            np.testing.assert_array_equal(buffer.keys_view(), expected_k)
            assert len(buffer) == expected_k.shape[0]

    def test_pop_front_returns_owned_copies(self):
        rng = np.random.default_rng(2)
        buffer = PendingBuffer(2, 4)
        keys, values = self._random_block(rng, 6)
        buffer.append(keys, values)
        popped_k, popped_v = buffer.pop_front(4)
        expected = popped_k.copy()
        buffer.append(*self._random_block(rng, 10))  # may overwrite/regrow
        np.testing.assert_array_equal(popped_k, expected)

    def test_pop_more_than_size_rejected(self):
        buffer = PendingBuffer(1, 2)
        buffer.append(np.zeros((2, 1, 2), np.float32), np.zeros((2, 1, 2), np.float32))
        with pytest.raises(Exception):
            buffer.pop_front(3)

    def test_mismatched_shapes_rejected(self):
        buffer = PendingBuffer(2, 4)
        with pytest.raises(Exception):
            buffer.append(np.zeros((2, 2, 4), np.float32), np.zeros((3, 2, 4), np.float32))
        with pytest.raises(Exception):
            buffer.append(np.zeros((2, 2, 3), np.float32), np.zeros((2, 2, 3), np.float32))

    def test_clear(self):
        buffer = PendingBuffer(2, 4)
        buffer.append(np.ones((3, 2, 4), np.float32), np.ones((3, 2, 4), np.float32))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.keys_view().shape == (0, 2, 4)


# ---------------------------------------------------------------------------
# Regression: streaming caches behave exactly like the pre-refactor
# concatenate-per-step implementation.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pq_pair():
    rng = np.random.default_rng(3)
    head_dim = 16
    keys = rng.normal(size=(2000, head_dim)).astype(np.float32)
    values = rng.normal(size=(2000, head_dim)).astype(np.float32)
    key_pq = ProductQuantizer.fit(keys, m_subspaces=8, nbits=5, seed=0)
    value_pq = ProductQuantizer.fit(values, m_subspaces=8, nbits=5, seed=1)
    return key_pq, value_pq


@pytest.fixture()
def model_config():
    return ModelConfig(
        vocab_size=64, d_model=32, n_layers=1, n_heads=2, max_seq_len=1024
    )


class _OldStyleMillionReference:
    """The seed implementation's storage algorithm, kept for bit-identity checks.

    Pending blocks live in Python lists and every attend re-concatenates both
    the code blocks and the pending blocks — exactly what
    ``StreamingQuantizedKVCache`` + ``MillionKVCacheLayer`` did before the
    contiguous storage refactor.
    """

    def __init__(self, config, key_pq, value_pq, residual_window=0):
        self.config = config
        self.key_pq = key_pq
        self.value_pq = value_pq
        self.residual_window = residual_window
        self.pending_keys: list[np.ndarray] = []
        self.pending_values: list[np.ndarray] = []
        self.key_code_blocks: list[np.ndarray] = []
        self.value_code_blocks: list[np.ndarray] = []
        self.stored_tokens = 0

    def append(self, keys, values):
        pending = sum(b.shape[0] for b in self.pending_keys)
        flushable = pending - self.residual_window
        if flushable > 0:
            all_k = np.concatenate(self.pending_keys, axis=0)
            all_v = np.concatenate(self.pending_values, axis=0)
            t, kv_heads, head_dim = all_k[:flushable].shape
            key_codes = self.key_pq.encode(
                all_k[:flushable].reshape(t * kv_heads, head_dim)
            )
            value_codes = self.value_pq.encode(
                all_v[:flushable].reshape(t * kv_heads, head_dim)
            )
            self.key_code_blocks.append(key_codes.reshape(t, kv_heads, -1))
            self.value_code_blocks.append(value_codes.reshape(t, kv_heads, -1))
            self.stored_tokens += flushable
            self.pending_keys = [all_k[flushable:]] if all_k[flushable:].size else []
            self.pending_values = [all_v[flushable:]] if all_v[flushable:].size else []
        self.pending_keys.append(np.asarray(keys, dtype=np.float32))
        self.pending_values.append(np.asarray(values, dtype=np.float32))

    def attend(self, queries, query_positions, scale):
        from repro.core.attention_pq import pq_attention_scores, pq_weighted_values

        n_queries, n_heads, head_dim = queries.shape
        score_blocks = []
        if self.stored_tokens:
            key_codes = np.concatenate(self.key_code_blocks, axis=0)
            score_blocks.append(
                pq_attention_scores(queries, key_codes, self.key_pq, scale=scale)
            )
        pending_keys = (
            np.concatenate(self.pending_keys, axis=0)
            if self.pending_keys
            else np.zeros((0, self.config.kv_heads, head_dim), np.float32)
        )
        pending_values = (
            np.concatenate(self.pending_values, axis=0)
            if self.pending_values
            else np.zeros((0, self.config.kv_heads, head_dim), np.float32)
        )
        if pending_keys.shape[0]:
            score_blocks.append(
                attention_scores(
                    queries,
                    pending_keys,
                    query_positions,
                    np.arange(
                        self.stored_tokens,
                        self.stored_tokens + pending_keys.shape[0],
                    ),
                    scale,
                    causal=True,
                )
            )
        scores = np.concatenate(score_blocks, axis=-1)
        probs = softmax(scores, axis=-1)
        context = np.zeros((n_queries, n_heads, head_dim), dtype=np.float32)
        if self.stored_tokens:
            value_codes = np.concatenate(self.value_code_blocks, axis=0)
            context += pq_weighted_values(
                probs[..., : self.stored_tokens], value_codes, self.value_pq
            )
        if pending_keys.shape[0]:
            expanded = repeat_kv_heads(pending_values, n_heads)
            context += np.einsum(
                "hqk,khd->qhd", probs[..., self.stored_tokens :], expanded
            ).astype(np.float32)
        return context


class TestRefactorBitIdentity:
    @pytest.mark.parametrize("recent_window", [0, 7, 16])
    def test_million_attend_bit_identical_to_old_algorithm(
        self, model_config, pq_pair, recent_window
    ):
        key_pq, value_pq = pq_pair
        million = MillionConfig(
            m_subspaces=key_pq.m_subspaces,
            nbits=key_pq.nbits,
            recent_window=recent_window,
        )
        cache = MillionKVCacheLayer(model_config, key_pq, value_pq, million)
        reference = _OldStyleMillionReference(
            model_config, key_pq, value_pq, residual_window=recent_window
        )
        rng = np.random.default_rng(4)
        position = 0
        for block_len in (5, 1, 9, 1, 1, 32, 3):
            keys = rng.normal(size=(block_len, 2, 16)).astype(np.float32)
            values = rng.normal(size=(block_len, 2, 16)).astype(np.float32)
            cache.append(keys, values)
            reference.append(keys, values)
            position += block_len
            queries = rng.normal(size=(1, 2, 16)).astype(np.float32)
            q_pos = np.asarray([position - 1])
            out_new = cache.attend(queries, q_pos, 0.25)
            out_old = reference.attend(queries, q_pos, 0.25)
            np.testing.assert_array_equal(out_new, out_old)
        assert cache.stored_tokens == reference.stored_tokens

    def test_kivi_grouped_flush_matches_block_list_decode(self, model_config):
        """flush_block_multiple > 1: stored/pending split and reads stay exact."""
        kivi_config = KiviConfig(group_size=8, residual_length=4)
        cache = KiviKVCache(model_config, kivi_config)
        quantizer = cache.quantizer
        rng = np.random.default_rng(5)
        ref_key_blocks = []
        appended = []
        for block_len in (3, 6, 1, 20, 2, 9):
            keys = rng.normal(size=(block_len, 2, 16)).astype(np.float32)
            values = rng.normal(size=(block_len, 2, 16)).astype(np.float32)
            appended.append((keys, values))
            cache.append(keys, values)
        # Replay the flush schedule on a plain list to get the reference split.
        pending: list[np.ndarray] = []
        stored = 0
        for keys, _ in appended:
            count = sum(b.shape[0] for b in pending)
            flushable = ((count - 4) // 8) * 8
            if flushable > 0:
                all_k = np.concatenate(pending, axis=0)
                ref_key_blocks.append(all_k[:flushable])
                stored += flushable
                pending = [all_k[flushable:]] if all_k[flushable:].size else []
            pending.append(keys)
        assert cache.stored_tokens == stored
        assert cache.pending_tokens == sum(b.shape[0] for b in pending)
        # Stored keys must decode to the same reconstruction the old
        # decode-at-attend path produced for the same blocks.
        expected = np.concatenate(
            [
                quantizer.quantize_keys(b.reshape(b.shape[0], -1)).dequantize()
                for b in ref_key_blocks
            ],
            axis=0,
        ).reshape(-1, 2, 16)
        materialized_keys, _ = cache._materialize_quantized()
        np.testing.assert_array_equal(materialized_keys, expected)
