"""Gradient-correctness tests for the tiny autograd engine."""

import numpy as np
import pytest

from repro.training import autograd as ag
from repro.training.autograd import Tensor


def numerical_gradient(fn, array, index, eps=1e-3):
    """Central-difference derivative of ``fn`` w.r.t. ``array[index]``."""
    plus = array.copy()
    plus[index] += eps
    minus = array.copy()
    minus[index] -= eps
    return (fn(plus) - fn(minus)) / (2 * eps)


class TestElementwiseOps:
    def test_add_broadcast_backward(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        out = ag.add(a, b)
        out.backward(np.ones((3, 4), dtype=np.float32))
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        ag.mul(a, b).backward(np.asarray([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_matmul_gradcheck(self):
        rng = np.random.default_rng(2)
        a_data = rng.normal(size=(3, 5)).astype(np.float32)
        b_data = rng.normal(size=(5, 2)).astype(np.float32)

        def loss_fn(b_arr):
            return float(np.sum(a_data @ b_arr))

        a, b = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        out = ag.matmul(a, b)
        loss = ag.mul(out, 1.0)
        loss.backward(np.ones_like(out.data))
        numeric = numerical_gradient(loss_fn, b_data, (2, 1))
        assert b.grad[2, 1] == pytest.approx(numeric, rel=1e-2)

    def test_batched_matmul_backward_shapes(self):
        a = Tensor(np.random.default_rng(3).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(4).normal(size=(4, 5)), requires_grad=True)
        out = ag.matmul(a, b)
        out.backward(np.ones(out.shape, dtype=np.float32))
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)

    def test_reshape_transpose_roundtrip(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = ag.transpose(ag.reshape(a, (4, 3)), (1, 0))
        out.backward(np.ones((3, 4), dtype=np.float32))
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_embedding_scatter_add(self):
        weight = Tensor(np.zeros((5, 2), dtype=np.float32), requires_grad=True)
        out = ag.embedding(weight, np.asarray([[1, 1], [3, 1]]))
        out.backward(np.ones(out.shape, dtype=np.float32))
        np.testing.assert_allclose(weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(weight.grad[3], [1.0, 1.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0])


class TestNormsAndActivations:
    @pytest.mark.parametrize("op_name", ["rms_norm", "layer_norm", "silu", "gelu"])
    def test_gradcheck(self, op_name):
        rng = np.random.default_rng(5)
        x_data = rng.normal(size=(2, 6)).astype(np.float32)
        weight_data = rng.normal(1.0, 0.1, size=(6,)).astype(np.float32)
        bias_data = rng.normal(0.0, 0.1, size=(6,)).astype(np.float32)

        def forward(arr):
            x = Tensor(arr, requires_grad=True)
            if op_name == "rms_norm":
                out = ag.rms_norm(x, Tensor(weight_data))
            elif op_name == "layer_norm":
                out = ag.layer_norm(x, Tensor(weight_data), Tensor(bias_data))
            elif op_name == "silu":
                out = ag.silu(x)
            else:
                out = ag.gelu(x)
            return x, out

        x, out = forward(x_data)
        out.backward(np.ones_like(out.data))
        index = (1, 2)
        numeric = numerical_gradient(lambda arr: float(forward(arr)[1].data.sum()), x_data, index)
        assert x.grad[index] == pytest.approx(numeric, rel=2e-2, abs=2e-3)

    def test_norm_weight_gradients(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(4, 8)).astype(np.float32))
        weight = Tensor(np.ones(8, dtype=np.float32), requires_grad=True)
        out = ag.rms_norm(x, weight)
        out.backward(np.ones_like(out.data))
        assert weight.grad is not None and weight.grad.shape == (8,)


class TestFusedOps:
    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(7)
        logits_data = rng.normal(size=(4, 6)).astype(np.float32)
        targets = np.asarray([0, 5, 2, 2])

        def loss_fn(arr):
            return float(ag.softmax_cross_entropy(Tensor(arr), targets).item())

        logits = Tensor(logits_data, requires_grad=True)
        ag.softmax_cross_entropy(logits, targets).backward()
        numeric = numerical_gradient(loss_fn, logits_data, (1, 5))
        assert logits.grad[1, 5] == pytest.approx(numeric, rel=1e-2, abs=1e-4)

    def test_cross_entropy_shape_check(self):
        with pytest.raises(ValueError):
            ag.softmax_cross_entropy(Tensor(np.zeros((3, 4))), np.zeros(2, dtype=np.int64))

    def test_rope_rotate_orthogonal(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(1, 5, 2, 8)).astype(np.float32), requires_grad=True)
        angles = rng.uniform(0, np.pi, size=(1, 5, 1, 4))
        cos, sin = np.cos(angles), np.sin(angles)
        out = ag.rope_rotate(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=-1), np.linalg.norm(x.data, axis=-1), rtol=1e-4
        )
        out.backward(np.ones_like(out.data))
        assert x.grad.shape == x.shape

    def test_attention_gradcheck(self):
        rng = np.random.default_rng(9)
        q_data = rng.normal(size=(1, 4, 2, 3)).astype(np.float32)
        k_data = rng.normal(size=(1, 4, 2, 3)).astype(np.float32)
        v_data = rng.normal(size=(1, 4, 2, 3)).astype(np.float32)

        def loss_fn(q_arr):
            out = ag.causal_self_attention(Tensor(q_arr), Tensor(k_data), Tensor(v_data), 0.5)
            return float(out.data.sum())

        q = Tensor(q_data, requires_grad=True)
        k = Tensor(k_data, requires_grad=True)
        v = Tensor(v_data, requires_grad=True)
        out = ag.causal_self_attention(q, k, v, 0.5)
        out.backward(np.ones_like(out.data))
        index = (0, 2, 1, 0)
        numeric = numerical_gradient(loss_fn, q_data, index)
        assert q.grad[index] == pytest.approx(numeric, rel=2e-2, abs=2e-3)

    def test_attention_is_causal(self):
        rng = np.random.default_rng(10)
        q = Tensor(rng.normal(size=(1, 3, 1, 4)).astype(np.float32))
        k = Tensor(rng.normal(size=(1, 3, 1, 4)).astype(np.float32))
        v_data = rng.normal(size=(1, 3, 1, 4)).astype(np.float32)
        out_a = ag.causal_self_attention(q, k, Tensor(v_data), 1.0).data
        v_mod = v_data.copy()
        v_mod[0, 2] += 100.0  # changing the last token's value
        out_b = ag.causal_self_attention(q, k, Tensor(v_mod), 1.0).data
        np.testing.assert_allclose(out_a[0, :2], out_b[0, :2], atol=1e-5)
        assert not np.allclose(out_a[0, 2], out_b[0, 2])


class TestTensorMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulation_through_shared_node(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = ag.add(ag.mul(x, 3.0), ag.mul(x, 2.0))
        y.backward(np.asarray([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_detach_stops_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        y = ag.mul(x.detach(), 5.0)
        assert not y.requires_grad

    def test_operator_sugar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a * 2.0 + 1.0) - a
        np.testing.assert_allclose(out.data, [2.0, 3.0])
