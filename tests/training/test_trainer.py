"""Tests for the trainable model, optimizers, trainer and checkpoints."""

import numpy as np
import pytest

from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.training import (
    Adam,
    SGD,
    TrainableTransformerLM,
    clip_grad_norm,
    cosine_lr,
    load_model_checkpoint,
    load_state_dict,
    sample_batch,
    save_model,
    state_dict,
    train_language_model,
    train_tiny_lm,
)
from repro.training.autograd import Tensor


@pytest.fixture(scope="module")
def train_config():
    return ModelConfig(
        name="train-unit",
        vocab_size=64,
        d_model=32,
        n_layers=1,
        n_heads=2,
        max_seq_len=256,
        positional="rope",
    )


class TestTrainableModel:
    def test_forward_shape(self, train_config):
        model = TrainableTransformerLM(train_config, seed=0)
        logits = model.forward(np.zeros((2, 10), dtype=np.int64))
        assert logits.shape == (2, 10, 64)

    def test_loss_backward_populates_all_grads(self, train_config):
        model = TrainableTransformerLM(train_config, seed=0)
        inputs = np.random.default_rng(0).integers(0, 64, size=(2, 12))
        loss = model.loss(inputs[:, :-1], inputs[:, 1:])
        loss.backward()
        for name, param in model.parameters().items():
            assert param.grad is not None, f"missing gradient for {name}"
            assert np.isfinite(param.grad).all(), f"non-finite gradient for {name}"

    def test_gqa_rejected(self):
        config = ModelConfig(vocab_size=64, d_model=32, n_layers=1, n_heads=4, n_kv_heads=2)
        with pytest.raises(Exception):
            TrainableTransformerLM(config)

    @pytest.mark.parametrize("positional,norm,activation", [
        ("absolute", "layernorm", "gelu"),
        ("alibi", "layernorm", "gelu"),
        ("rope", "rmsnorm", "silu"),
    ])
    def test_architecture_variants_trainable(self, positional, norm, activation):
        config = ModelConfig(
            vocab_size=64, d_model=32, n_layers=1, n_heads=2, max_seq_len=128,
            positional=positional, norm=norm, activation=activation,
        )
        model = TrainableTransformerLM(config, seed=1)
        loss = model.loss(np.zeros((1, 8), dtype=np.int64), np.zeros((1, 8), dtype=np.int64))
        loss.backward()
        assert np.isfinite(loss.item())

    def test_export_matches_trainable_forward(self, train_config):
        """The exported inference model must produce the same logits."""
        model = TrainableTransformerLM(train_config, seed=3)
        tokens = np.random.default_rng(1).integers(0, 64, size=16)
        trainable_logits = model.forward(tokens[None, :]).data[0]
        inference = model.to_inference_model()
        inference.reset_cache(FullPrecisionCacheFactory())
        inference_logits = inference.prefill(tokens)
        np.testing.assert_allclose(trainable_logits, inference_logits, atol=2e-3)

    def test_export_matches_for_alibi_model(self):
        config = ModelConfig(
            vocab_size=64, d_model=32, n_layers=2, n_heads=2, max_seq_len=128,
            positional="alibi", norm="layernorm", activation="gelu",
        )
        model = TrainableTransformerLM(config, seed=4)
        tokens = np.random.default_rng(2).integers(0, 64, size=12)
        np.testing.assert_allclose(
            model.forward(tokens[None, :]).data[0],
            model.to_inference_model().prefill(tokens),
            atol=2e-3,
        )


class TestOptimizers:
    def _quadratic_params(self):
        return {"x": Tensor(np.asarray([5.0, -3.0], dtype=np.float32), requires_grad=True)}

    def _set_grad_to_gradient_of_half_square(self, params):
        params["x"].grad = params["x"].data.copy()

    def test_adam_converges_on_quadratic(self):
        params = self._quadratic_params()
        optimizer = Adam(params, lr=0.3)
        for _ in range(100):
            optimizer.zero_grad()
            self._set_grad_to_gradient_of_half_square(params)
            optimizer.step()
        assert np.abs(params["x"].data).max() < 0.1

    def test_sgd_with_momentum_converges(self):
        params = self._quadratic_params()
        optimizer = SGD(params, lr=0.1, momentum=0.5)
        for _ in range(200):
            optimizer.zero_grad()
            self._set_grad_to_gradient_of_half_square(params)
            optimizer.step()
        assert np.abs(params["x"].data).max() < 0.1

    def test_clip_grad_norm(self):
        params = {"x": Tensor(np.zeros(3), requires_grad=True)}
        params["x"].grad = np.asarray([3.0, 4.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(params["x"].grad) == pytest.approx(1.0)

    def test_cosine_lr_schedule(self):
        assert cosine_lr(0, 100, 1.0, warmup_steps=10) == pytest.approx(0.1)
        assert cosine_lr(10, 100, 1.0, warmup_steps=10) == pytest.approx(1.0, rel=1e-2)
        assert cosine_lr(99, 100, 1.0, warmup_steps=10) < 0.2

    def test_adam_skips_missing_grads(self):
        params = {"x": Tensor(np.ones(2), requires_grad=True)}
        before = params["x"].data.copy()
        Adam(params).step()
        np.testing.assert_array_equal(params["x"].data, before)


class TestBatchSampling:
    def test_shapes_and_shift(self):
        stream = np.arange(1000) % 64
        inputs, targets = sample_batch(stream, 4, 16, np.random.default_rng(0), induction_fraction=0.0)
        assert inputs.shape == targets.shape == (4, 16)
        np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])

    def test_induction_windows_repeat(self):
        stream = np.random.default_rng(1).integers(0, 64, size=2000)
        inputs, _ = sample_batch(stream, 8, 32, np.random.default_rng(2), induction_fraction=1.0)
        half = 16
        np.testing.assert_array_equal(inputs[:, half : 2 * half], inputs[:, :half])

    def test_stream_too_short(self):
        with pytest.raises(Exception):
            sample_batch(np.arange(10), 1, 16, np.random.default_rng(0))


class TestTaskEpisodes:
    def test_episode_layout(self):
        from repro.data.longcontext import SPECIAL_TOKENS
        from repro.training.trainer import sample_task_episode

        stream = np.random.default_rng(0).integers(16, 64, size=4096)
        window = sample_task_episode(stream, 96, np.random.default_rng(1), vocab_size=64)
        assert window.shape == (97,)
        assert window[-7] == SPECIAL_TOKENS.question or SPECIAL_TOKENS.question in window
        # The answer (last 3 tokens) equals the value stored after the value marker.
        value_marker_positions = np.flatnonzero(window == SPECIAL_TOKENS.value_marker)
        first_value = window[value_marker_positions[0] + 1 : value_marker_positions[0] + 4]
        np.testing.assert_array_equal(window[-3:], first_value)
        # The question repeats the key.
        key_marker = np.flatnonzero(window == SPECIAL_TOKENS.key_marker)[0]
        key = window[key_marker + 1 : key_marker + 4]
        question_marker = np.flatnonzero(window == SPECIAL_TOKENS.question)[-1]
        np.testing.assert_array_equal(window[question_marker + 1 : question_marker + 4], key)

    def test_training_with_episodes_and_corpus_mixture(self, train_config):
        _, history = train_language_model(
            train_config,
            corpus_name=("wikitext2-syn", "ptb-syn"),
            steps=10,
            batch_size=4,
            seq_len=64,
            task_episode_fraction=0.5,
            seed=3,
            train_tokens=16384,
            log_every=0,
        )
        assert len(history.losses) == 10
        assert np.isfinite(history.final_loss)


class TestTrainingLoop:
    def test_loss_decreases(self, train_config):
        _, history = train_language_model(
            train_config, steps=30, batch_size=4, seq_len=48, learning_rate=5e-3, seed=0,
            train_tokens=8192, log_every=0,
        )
        assert len(history.losses) == 30
        assert history.improved()
        assert np.isfinite(history.final_validation_ppl)

    def test_train_tiny_lm_exports_working_model(self, train_config):
        model, history = train_tiny_lm(
            train_config, steps=15, batch_size=4, seq_len=48, seed=1, train_tokens=8192,
            log_every=0,
        )
        logits = model.prefill(np.arange(10) % 64)
        assert np.isfinite(logits).all()
        assert history.final_loss < history.losses[0] + 1.0


class TestCheckpoints:
    def test_state_dict_roundtrip(self, train_config, tmp_path):
        model, _ = train_tiny_lm(
            train_config, steps=3, batch_size=2, seq_len=32, seed=2, train_tokens=4096,
            log_every=0,
        )
        tokens = np.arange(12) % 64
        reference = model.prefill(tokens)
        path = save_model(model, tmp_path / "checkpoint")
        restored = load_model_checkpoint(path)
        np.testing.assert_allclose(restored.prefill(tokens), reference, atol=1e-5)

    def test_load_state_dict_shape_mismatch(self, train_config):
        from repro.models.weights import build_model

        model = build_model(train_config, seed=0)
        state = state_dict(model)
        bad = dict(state)
        bad["token_embedding"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(Exception):
            load_state_dict(model, bad)

    def test_missing_keys_rejected(self, train_config):
        from repro.models.weights import build_model

        model = build_model(train_config, seed=0)
        with pytest.raises(Exception):
            load_state_dict(model, {"token_embedding": model.token_embedding.weight})
