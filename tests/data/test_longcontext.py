"""Tests for the long-context document builder."""

import numpy as np
import pytest

from repro.data.longcontext import SPECIAL_TOKENS, ContextBuilder, random_content_tokens


class TestSpecialTokens:
    def test_content_vocab(self):
        assert SPECIAL_TOKENS.content_vocab(512) == 512 - SPECIAL_TOKENS.content_start

    def test_small_vocab_rejected(self):
        with pytest.raises(Exception):
            SPECIAL_TOKENS.content_vocab(16)


class TestRandomContent:
    def test_range_avoids_markers(self):
        rng = np.random.default_rng(0)
        tokens = random_content_tokens(500, 128, rng)
        assert tokens.min() >= SPECIAL_TOKENS.content_start
        assert tokens.max() < 128

    def test_zero_length(self):
        rng = np.random.default_rng(0)
        assert random_content_tokens(0, 128, rng).size == 0


class TestContextBuilder:
    def test_length_tracking(self):
        builder = ContextBuilder(128, seed=0)
        builder.append_filler(10)
        builder.append_marker(SPECIAL_TOKENS.separator)
        assert builder.length == 11
        assert builder.tokens().shape == (11,)

    def test_fact_layout(self):
        builder = ContextBuilder(128, seed=1)
        key, value = builder.new_key(2), builder.new_value(3)
        start = builder.append_fact(key, value)
        tokens = builder.tokens()
        assert tokens[start] == SPECIAL_TOKENS.key_marker
        np.testing.assert_array_equal(tokens[start + 1 : start + 3], key)
        assert tokens[start + 3] == SPECIAL_TOKENS.value_marker
        np.testing.assert_array_equal(tokens[start + 4 : start + 7], value)

    def test_question_layout(self):
        builder = ContextBuilder(128, seed=2)
        question = builder.new_key(2)
        start = builder.append_question(question)
        tokens = builder.tokens()
        assert tokens[start] == SPECIAL_TOKENS.question
        assert tokens[-1] == SPECIAL_TOKENS.answer

    def test_passage_delimited(self):
        builder = ContextBuilder(128, seed=3)
        builder.append_passage(20, passage_id=7)
        tokens = builder.tokens()
        assert tokens[0] == SPECIAL_TOKENS.passage_start
        assert tokens[-1] == SPECIAL_TOKENS.passage_end
        assert builder.annotations[0]["passage_id"] == 7

    def test_annotations_record_offsets(self):
        builder = ContextBuilder(128, seed=4)
        builder.append_filler(5)
        start = builder.append_example(builder.new_key(2), builder.new_value(1))
        annotation = builder.annotations[-1]
        assert annotation["kind"] == "example"
        assert annotation["start"] == start == 5

    def test_deterministic_for_seed(self):
        a = ContextBuilder(128, seed=9)
        b = ContextBuilder(128, seed=9)
        a.append_filler(50)
        b.append_filler(50)
        np.testing.assert_array_equal(a.tokens(), b.tokens())

    def test_empty(self):
        builder = ContextBuilder(128, seed=0)
        assert builder.tokens().size == 0
