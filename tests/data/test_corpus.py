"""Tests for the synthetic Markov corpora."""

import numpy as np
import pytest

from repro.data.corpus import (
    CORPUS_REGISTRY,
    CorpusConfig,
    MarkovCorpus,
    available_corpora,
    get_corpus,
    load_corpus,
)


class TestCorpusConfig:
    def test_registry_names(self):
        assert set(available_corpora()) == {"wikitext2-syn", "ptb-syn"}

    def test_invalid_branching(self):
        with pytest.raises(Exception):
            CorpusConfig(name="bad", vocab_size=16, branching_factor=32)

    def test_invalid_alpha(self):
        with pytest.raises(Exception):
            CorpusConfig(name="bad", zipf_alpha=0.0)


class TestMarkovCorpus:
    def test_sample_shape_and_range(self):
        corpus = get_corpus("wikitext2-syn")
        tokens = corpus.sample(500, seed=0)
        assert tokens.shape == (500,)
        assert tokens.min() >= 0 and tokens.max() < corpus.vocab_size

    def test_deterministic(self):
        corpus = get_corpus("ptb-syn")
        np.testing.assert_array_equal(corpus.sample(100, seed=3), corpus.sample(100, seed=3))
        assert not np.array_equal(corpus.sample(100, seed=3), corpus.sample(100, seed=4))

    def test_transitions_are_sparse_without_repetition(self):
        """Every sampled transition must be one of the allowed successors."""
        config = CorpusConfig(name="pure-markov", vocab_size=128, branching_factor=16, seed=7)
        corpus = MarkovCorpus(config)
        tokens = corpus.sample(300, seed=1)
        for prev, nxt in zip(tokens[:-1], tokens[1:]):
            assert np.isfinite(corpus.transition_log_prob(int(prev), int(nxt)))

    def test_repeated_spans_present(self):
        """The registry corpora contain long-range copies of earlier spans."""
        corpus = get_corpus("wikitext2-syn")
        tokens = corpus.sample(600, seed=3)
        span = corpus.config.repetition_span
        found_copy = False
        for start in range(corpus.config.repetition_period, 600 - span):
            window = tokens[start : start + span]
            history = tokens[:start]
            for src in range(0, start - span):
                if np.array_equal(history[src : src + span], window):
                    found_copy = True
                    break
            if found_copy:
                break
        assert found_copy

    def test_entropy_rate_below_uniform(self):
        corpus = get_corpus("wikitext2-syn")
        assert corpus.entropy_rate() < np.log(corpus.vocab_size)

    def test_sequence_log_prob_finite_for_samples(self):
        config = CorpusConfig(name="pure-markov-2", vocab_size=128, branching_factor=16, seed=9)
        corpus = MarkovCorpus(config)
        tokens = corpus.sample(50, seed=2)
        assert np.isfinite(corpus.sequence_log_prob(tokens))

    def test_corpora_differ(self):
        a = load_corpus("wikitext2-syn", "test", 200)
        b = load_corpus("ptb-syn", "test", 200)
        assert not np.array_equal(a, b)


class TestLoadCorpus:
    def test_splits_are_disjoint_streams(self):
        train = load_corpus("wikitext2-syn", "train", 200)
        test = load_corpus("wikitext2-syn", "test", 200)
        assert not np.array_equal(train, test)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            load_corpus("wikitext2-syn", "validation", 128),
            load_corpus("wikitext2-syn", "validation", 128),
        )

    def test_unknown_split(self):
        with pytest.raises(Exception):
            load_corpus("wikitext2-syn", "dev", 10)

    def test_unknown_name(self):
        with pytest.raises(Exception):
            load_corpus("wikitext-103", "test", 10)
