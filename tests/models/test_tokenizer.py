"""Tests for the byte and word tokenizers."""

import numpy as np
import pytest

from repro.models.tokenizer import ByteTokenizer, WordTokenizer


class TestByteTokenizer:
    def test_roundtrip_ascii(self):
        tok = ByteTokenizer()
        text = "product quantization"
        assert tok.decode(tok.encode(text, add_bos=False)) == text

    def test_roundtrip_unicode(self):
        tok = ByteTokenizer()
        text = "kv-céche ≈ 4 bits"
        assert tok.decode(tok.encode(text, add_bos=False)) == text

    def test_specials(self):
        tok = ByteTokenizer()
        ids = tok.encode("a", add_bos=True, add_eos=True)
        assert ids[0] == ByteTokenizer.BOS and ids[-1] == ByteTokenizer.EOS
        assert tok.vocab_size == 258

    def test_decode_skips_specials(self):
        tok = ByteTokenizer()
        assert tok.decode([ByteTokenizer.BOS, ord("h"), ord("i"), ByteTokenizer.EOS]) == "hi"


class TestWordTokenizer:
    def test_from_texts_and_roundtrip(self):
        tok = WordTokenizer.from_texts(["the cache is the bottleneck", "the cache"], max_vocab=32)
        ids = tok.encode("the cache is", add_bos=False)
        assert tok.decode(ids) == "the cache is"

    def test_unknown_maps_to_unk(self):
        tok = WordTokenizer.from_texts(["alpha beta"], max_vocab=16)
        ids = tok.encode("gamma", add_bos=False)
        assert ids.tolist() == [WordTokenizer.UNK]

    def test_vocab_cap(self):
        words = " ".join(f"w{i}" for i in range(100))
        tok = WordTokenizer.from_texts([words], max_vocab=20)
        assert tok.vocab_size <= 20

    def test_specials_roundtrip(self):
        tok = WordTokenizer.from_texts(["a b c"], max_vocab=16)
        ids = tok.encode("a b", add_bos=True, add_eos=True)
        assert ids[0] == WordTokenizer.BOS and ids[-1] == WordTokenizer.EOS
        assert tok.decode(ids) == "a b"

    def test_token_id_lookup(self):
        tok = WordTokenizer.from_texts(["x y"], max_vocab=16)
        assert tok.id_to_token(tok.token_to_id("x")) == "x"
        assert tok.token_to_id("missing") == WordTokenizer.UNK

    def test_max_vocab_too_small(self):
        with pytest.raises(Exception):
            WordTokenizer.from_texts(["a"], max_vocab=2)
