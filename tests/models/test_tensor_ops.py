"""Tests for the numerical primitives, including the online-softmax merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.tensor_ops import (
    OnlineSoftmaxState,
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    rms_norm,
    silu,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 9))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-5)

    def test_invariant_to_shift(self):
        x = np.asarray([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-5)

    def test_handles_large_values(self):
        out = softmax(np.asarray([1e4, 0.0, -1e4]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(1.0)

    def test_axis(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), 1.0, rtol=1e-5)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = np.random.default_rng(2).normal(size=(6, 11))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x) + 1e-12), atol=1e-4)

    def test_all_non_positive(self):
        x = np.random.default_rng(3).normal(size=(4, 4))
        assert (log_softmax(x) <= 1e-6).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 5), -20.0, dtype=np.float32)
        targets = np.asarray([0, 3, 4])
        logits[np.arange(3), targets] = 20.0
        assert cross_entropy(logits, targets) < 1e-3

    def test_uniform_logits(self):
        logits = np.zeros((10, 7), dtype=np.float32)
        targets = np.zeros(10, dtype=np.int64)
        assert cross_entropy(logits, targets) == pytest.approx(np.log(7), rel=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((3, 4)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros(4), np.zeros(1, dtype=np.int64))


class TestNorms:
    def test_rms_norm_unit_scale(self):
        x = np.random.default_rng(4).normal(size=(8, 16)).astype(np.float32)
        out = rms_norm(x, np.ones(16))
        rms = np.sqrt(np.mean(out.astype(np.float64) ** 2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(5).normal(size=(8, 32)).astype(np.float32)
        out = layer_norm(x, np.ones(32), np.zeros(32))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-2)

    def test_layer_norm_bias_shift(self):
        x = np.random.default_rng(6).normal(size=(4, 8)).astype(np.float32)
        shifted = layer_norm(x, np.ones(8), np.full(8, 2.0))
        base = layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(shifted, base + 2.0, atol=1e-5)

    def test_weight_scaling(self):
        x = np.random.default_rng(7).normal(size=(4, 8)).astype(np.float32)
        np.testing.assert_allclose(
            rms_norm(x, 2.0 * np.ones(8)), 2.0 * rms_norm(x, np.ones(8)), rtol=1e-5
        )


class TestActivations:
    def test_silu_at_zero(self):
        assert silu(np.asarray([0.0]))[0] == pytest.approx(0.0)

    def test_silu_positive_large(self):
        assert silu(np.asarray([20.0]))[0] == pytest.approx(20.0, rel=1e-3)

    def test_gelu_monotone_for_positive_inputs(self):
        x = np.linspace(0.0, 3.0, 50)
        out = gelu(x)
        assert (np.diff(out) > 0).all()

    def test_gelu_known_value(self):
        # gelu(-1) ≈ -0.1588 for the tanh approximation.
        assert gelu(np.asarray([-1.0]))[0] == pytest.approx(-0.1588, abs=1e-3)

    def test_gelu_at_zero(self):
        assert gelu(np.asarray([0.0]))[0] == pytest.approx(0.0)


class TestOnlineSoftmax:
    def _reference(self, scores, values):
        probs = softmax(scores, axis=-1)
        return np.einsum("...k,kd->...d", probs, values)

    def test_single_block_matches_softmax(self):
        rng = np.random.default_rng(8)
        scores = rng.normal(size=(2, 3, 7))
        values = rng.normal(size=(7, 5))
        state = OnlineSoftmaxState((2, 3), 5)
        state.update(scores, values)
        np.testing.assert_allclose(state.finalize(), self._reference(scores, values), atol=1e-5)

    def test_blockwise_equals_full(self):
        rng = np.random.default_rng(9)
        scores = rng.normal(size=(4, 12)) * 3
        values = rng.normal(size=(12, 6))
        state = OnlineSoftmaxState((4,), 6)
        state.update(scores[:, :5], values[:5])
        state.update(scores[:, 5:], values[5:])
        np.testing.assert_allclose(state.finalize(), self._reference(scores, values), atol=1e-5)

    def test_merge_two_states(self):
        rng = np.random.default_rng(10)
        scores = rng.normal(size=(3, 10))
        values = rng.normal(size=(10, 4))
        left = OnlineSoftmaxState((3,), 4)
        right = OnlineSoftmaxState((3,), 4)
        left.update(scores[:, :6], values[:6])
        right.update(scores[:, 6:], values[6:])
        left.merge(right)
        np.testing.assert_allclose(left.finalize(), self._reference(scores, values), atol=1e-5)

    def test_empty_block_is_noop(self):
        state = OnlineSoftmaxState((2,), 3)
        state.update(np.zeros((2, 0)), np.zeros((0, 3)))
        assert not state.has_observations.any()

    def test_per_query_values(self):
        rng = np.random.default_rng(11)
        scores = rng.normal(size=(2, 6))
        values = rng.normal(size=(2, 6, 3))
        state = OnlineSoftmaxState((2,), 3)
        state.update(scores, values)
        probs = softmax(scores, axis=-1)
        expected = np.einsum("qk,qkd->qd", probs, values)
        np.testing.assert_allclose(state.finalize(), expected, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        state = OnlineSoftmaxState((2,), 3)
        with pytest.raises(ValueError):
            state.update(np.zeros((3, 4)), np.zeros((4, 3)))

    @given(
        n_keys=st.integers(min_value=1, max_value=30),
        split=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_point_property(self, n_keys, split, seed):
        split = min(split, n_keys)
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(2, n_keys)) * 5
        values = rng.normal(size=(n_keys, 3))
        state = OnlineSoftmaxState((2,), 3)
        state.update(scores[:, :split], values[:split])
        state.update(scores[:, split:], values[split:])
        np.testing.assert_allclose(state.finalize(), self._reference(scores, values), atol=1e-4)
