"""Tests for the transformer LM: prefill/decode equivalence, generation, zoo."""

import numpy as np
import pytest

from repro.models import (
    FullPrecisionCacheFactory,
    GreedySampler,
    ModelConfig,
    TemperatureSampler,
    TopKSampler,
    TopPSampler,
    available_models,
    build_model,
    load_model,
    model_roster,
    sample_token,
)
from repro.models.config import ModelConfig as Config
from repro.models.weights import OutlierSpec


class TestModelConfig:
    def test_head_dim(self, tiny_config):
        assert tiny_config.head_dim * tiny_config.n_heads == tiny_config.d_model

    def test_gqa_group(self, gqa_config):
        assert gqa_config.gqa_group_size == 2
        assert gqa_config.kv_dim == gqa_config.kv_heads * gqa_config.head_dim

    def test_invalid_heads(self):
        with pytest.raises(Exception):
            Config(d_model=60, n_heads=7)

    def test_invalid_positional(self):
        with pytest.raises(Exception):
            Config(positional="learned-fancy")

    def test_roundtrip_dict(self, tiny_config):
        assert Config.from_dict(tiny_config.to_dict()) == tiny_config

    def test_parameter_count_matches_model(self, tiny_config, tiny_model):
        assert tiny_model.num_parameters() == pytest.approx(
            tiny_config.num_parameters(), rel=0.01
        )

    def test_kv_cache_bytes_per_token(self, tiny_config):
        expected = 2 * tiny_config.n_layers * tiny_config.kv_dim * 2.0
        assert tiny_config.kv_cache_bytes_per_token() == expected


class TestForwardSemantics:
    def test_prefill_then_decode_matches_full_prefill(self, tiny_model):
        """Incremental decoding must produce the same logits as batch prefill."""
        tokens = np.arange(12) % tiny_model.config.vocab_size
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        full = tiny_model.prefill(tokens)

        tiny_model.reset_cache(FullPrecisionCacheFactory())
        tiny_model.prefill(tokens[:6])
        stepped = [tiny_model.decode_step(int(t)) for t in tokens[6:]]
        np.testing.assert_allclose(np.stack(stepped), full[6:], atol=1e-4)

    def test_chunked_prefill_matches(self, tiny_model):
        tokens = np.arange(16) % tiny_model.config.vocab_size
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        full = tiny_model.prefill(tokens)
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        chunked = np.concatenate(
            [tiny_model.forward(tokens[i : i + 4]) for i in range(0, 16, 4)]
        )
        np.testing.assert_allclose(chunked, full, atol=1e-4)

    def test_context_length_tracking(self, tiny_model):
        tiny_model.reset_cache()
        tiny_model.prefill(np.arange(5))
        assert tiny_model.context_length == 5
        tiny_model.decode_step(1)
        assert tiny_model.context_length == 6

    def test_max_seq_len_enforced(self, tiny_model):
        tiny_model.reset_cache()
        with pytest.raises(ValueError):
            tiny_model.prefill(np.zeros(tiny_model.config.max_seq_len + 1, dtype=np.int64))
        tiny_model.reset_cache()

    def test_empty_input_rejected(self, tiny_model):
        tiny_model.reset_cache()
        with pytest.raises(Exception):
            tiny_model.forward(np.zeros(0, dtype=np.int64))

    def test_deterministic_across_instances(self, tiny_config):
        tokens = np.arange(8)
        a = build_model(tiny_config, seed=3).prefill(tokens)
        b = build_model(tiny_config, seed=3).prefill(tokens)
        np.testing.assert_array_equal(a, b)
        c = build_model(tiny_config, seed=4).prefill(tokens)
        assert not np.allclose(a, c)

    def test_gqa_alibi_model_runs(self, gqa_model):
        gqa_model.reset_cache()
        logits = gqa_model.prefill(np.arange(10))
        assert logits.shape == (10, gqa_model.config.vocab_size)
        assert np.isfinite(logits).all()


class TestGeneration:
    def test_greedy_deterministic(self, tiny_model):
        prompt = np.arange(6)
        a = tiny_model.generate(prompt, 5, seed=0)
        b = tiny_model.generate(prompt, 5, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_length_and_range(self, tiny_model):
        out = tiny_model.generate(np.arange(4), 7, sampler=TemperatureSampler(1.0), seed=0)
        assert out.shape == (7,)
        assert (out >= 0).all() and (out < tiny_model.config.vocab_size).all()

    def test_stop_token(self, tiny_model):
        prompt = np.arange(4)
        greedy_first = int(tiny_model.generate(prompt, 1, seed=0)[0])
        out = tiny_model.generate(prompt, 10, stop_token=greedy_first, seed=0)
        assert out.size == 1 and int(out[0]) == greedy_first

    def test_zero_tokens(self, tiny_model):
        assert tiny_model.generate(np.arange(4), 0).size == 0

    def test_generation_respects_max_seq_len(self, tiny_config):
        short = ModelConfig(**{**tiny_config.to_dict(), "max_seq_len": 10, "name": "short"})
        model = build_model(short, seed=0)
        out = model.generate(np.arange(8), 10)
        assert out.size <= 2


class TestSamplers:
    def test_greedy_argmax(self):
        logits = np.asarray([0.1, 5.0, -2.0])
        assert sample_token(logits, GreedySampler()) == 1

    def test_topk_restricts_support(self):
        logits = np.asarray([10.0, 9.5, -50.0, -50.0])
        rng_samples = {sample_token(logits, TopKSampler(2), seed=s) for s in range(20)}
        assert rng_samples <= {0, 1}

    def test_topp_extreme_p_is_greedy(self):
        logits = np.asarray([3.0, 0.0, -1.0])
        assert sample_token(logits, TopPSampler(p=1e-6)) == 0

    def test_temperature_validation(self):
        with pytest.raises(Exception):
            TemperatureSampler(0.0)
        with pytest.raises(Exception):
            TopKSampler(0)
        with pytest.raises(Exception):
            TopPSampler(0.0)


class TestModelZoo:
    def test_all_models_load_and_run(self):
        for name in available_models():
            model = load_model(name, seed=0)
            logits = model.prefill(np.arange(6))
            assert logits.shape == (6, model.config.vocab_size)
            assert np.isfinite(logits).all()

    def test_roster_covers_table_one(self):
        roster = model_roster()
        assert len(roster) == 5
        positional = {entry.positional for entry in roster}
        assert "Absolute" in positional and "ALiBi" in positional

    def test_unknown_model_rejected(self):
        with pytest.raises(Exception):
            load_model("gpt-17")

    def test_max_seq_len_override(self):
        model = load_model("llama-2-7b-tiny", max_seq_len=128)
        assert model.config.max_seq_len == 128

    def test_outlier_spec_changes_keys(self):
        tokens = np.arange(16)
        plain = load_model("llama-2-7b-tiny", seed=0, outlier_spec=OutlierSpec(key_channel_scale=1.0))
        spiky = load_model("llama-2-7b-tiny", seed=0, outlier_spec=OutlierSpec(key_channel_scale=8.0))
        assert not np.allclose(plain.prefill(tokens), spiky.prefill(tokens))


class TestContextSaveRestore:
    def test_save_restore_roundtrip(self, tiny_model, test_tokens):
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        tiny_model.prefill(test_tokens[:12])
        saved = tiny_model.save_context()
        assert saved.next_position == 12
        fresh = tiny_model.fresh_context()
        tiny_model.restore_context(fresh)
        assert tiny_model.context_length == 0
        tiny_model.restore_context(saved)
        assert tiny_model.context_length == 12
        assert tiny_model.caches is saved.caches

    def test_temporary_context_restores_state_and_factory(self, tiny_model, test_tokens):
        factory = FullPrecisionCacheFactory()
        tiny_model.reset_cache(factory)
        tiny_model.prefill(test_tokens[:10])
        caches_before = tiny_model.caches
        with tiny_model.temporary_context(FullPrecisionCacheFactory(bytes_per_value=4.0)):
            assert tiny_model.context_length == 0
            tiny_model.prefill(test_tokens[:20])
            assert tiny_model.context_length == 20
        assert tiny_model.caches is caches_before
        assert tiny_model.context_length == 10
        assert tiny_model.cache_factory is factory

    def test_temporary_context_restores_on_error(self, tiny_model, test_tokens):
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        tiny_model.prefill(test_tokens[:8])
        saved_caches = tiny_model.caches
        with pytest.raises(ValueError):
            with tiny_model.temporary_context():
                raise ValueError("boom")
        assert tiny_model.caches is saved_caches
        assert tiny_model.context_length == 8

    def test_contexts_isolate_independent_sequences(self, tiny_model, test_tokens):
        """Two contexts swapped through one model generate independently."""
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        first = tiny_model.fresh_context()
        second = tiny_model.fresh_context()
        outer = tiny_model.save_context()
        tiny_model.restore_context(first)
        logits_first = tiny_model.prefill(test_tokens[:6])
        first = tiny_model.save_context()
        tiny_model.restore_context(second)
        tiny_model.prefill(test_tokens[6:30])
        tiny_model.restore_context(first)
        np.testing.assert_array_equal(
            tiny_model.forward(test_tokens[6:7])[0].shape,
            (tiny_model.config.vocab_size,),
        )
        assert first.caches is not second.caches
        tiny_model.restore_context(outer)
