"""Tests for attention math, the full-precision cache and the attention block."""

import numpy as np
import pytest

from repro.models.attention import AttentionBlock
from repro.models.attention_math import (
    attention_scores,
    causal_score_mask,
    dense_attention,
    repeat_kv_heads,
)
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory, FullPrecisionKVCacheLayer
from repro.models.linear import Linear
from repro.models.positional import RotaryEmbedding
from repro.models.tensor_ops import softmax


class TestRepeatKVHeads:
    def test_noop_when_equal(self):
        kv = np.random.default_rng(0).normal(size=(5, 4, 8))
        assert repeat_kv_heads(kv, 4) is kv

    def test_expansion(self):
        kv = np.arange(2 * 2 * 3).reshape(2, 2, 3)
        out = repeat_kv_heads(kv, 4)
        assert out.shape == (2, 4, 3)
        np.testing.assert_array_equal(out[:, 0], out[:, 1])
        np.testing.assert_array_equal(out[:, 2], out[:, 3])

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            repeat_kv_heads(np.zeros((1, 3, 2)), 4)


class TestCausalMask:
    def test_diagonal_visible(self):
        mask = causal_score_mask(np.arange(3), np.arange(3))
        assert (np.diag(mask) == 0).all()

    def test_future_blocked(self):
        mask = causal_score_mask(np.asarray([0]), np.asarray([0, 1, 2]))
        assert mask[0, 0] == 0
        assert mask[0, 1] < -1e20 and mask[0, 2] < -1e20

    def test_offset_queries(self):
        mask = causal_score_mask(np.asarray([5]), np.arange(8))
        assert (mask[0, :6] == 0).all()
        assert (mask[0, 6:] < -1e20).all()


class TestDenseAttention:
    def test_matches_manual_softmax(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(2, 2, 8)).astype(np.float32)
        k = rng.normal(size=(5, 2, 8)).astype(np.float32)
        v = rng.normal(size=(5, 2, 8)).astype(np.float32)
        q_pos, k_pos = np.asarray([3, 4]), np.arange(5)
        out = dense_attention(q, k, v, q_pos, k_pos, scale=0.35)
        scores = attention_scores(q, k, q_pos, k_pos, 0.35)
        probs = softmax(scores, axis=-1)
        expected = np.einsum("hqk,khd->qhd", probs, v)
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_causality(self):
        # Changing a future key/value must not change the current query output.
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 2, 8)).astype(np.float32)
        k = rng.normal(size=(4, 2, 8)).astype(np.float32)
        v = rng.normal(size=(4, 2, 8)).astype(np.float32)
        out_a = dense_attention(q, k, v, np.asarray([1]), np.arange(4), 0.5)
        k2, v2 = k.copy(), v.copy()
        k2[3] += 10.0
        v2[3] -= 10.0
        out_b = dense_attention(q, k2, v2, np.asarray([1]), np.arange(4), 0.5)
        np.testing.assert_allclose(out_a, out_b, atol=1e-6)

    def test_single_visible_key_returns_value(self):
        q = np.ones((1, 1, 4), dtype=np.float32)
        k = np.ones((3, 1, 4), dtype=np.float32)
        v = np.stack([np.full((1, 4), i, dtype=np.float32) for i in range(3)])
        out = dense_attention(q, k, v, np.asarray([0]), np.arange(3), 1.0)
        np.testing.assert_allclose(out[0, 0], v[0, 0], atol=1e-6)

    def test_gqa_matches_expanded(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(3, 4, 8)).astype(np.float32)
        k = rng.normal(size=(6, 2, 8)).astype(np.float32)
        v = rng.normal(size=(6, 2, 8)).astype(np.float32)
        q_pos, k_pos = np.arange(3, 6), np.arange(6)
        grouped = dense_attention(q, k, v, q_pos, k_pos, 0.3)
        expanded = dense_attention(q, repeat_kv_heads(k, 4), repeat_kv_heads(v, 4), q_pos, k_pos, 0.3)
        np.testing.assert_allclose(grouped, expanded, atol=1e-6)

    def test_alibi_bias_prefers_recent(self):
        rng = np.random.default_rng(4)
        q = rng.normal(size=(1, 2, 8)).astype(np.float32) * 0.01
        k = np.zeros((10, 2, 8), dtype=np.float32)
        v = np.stack([np.full((2, 8), i, dtype=np.float32) for i in range(10)])
        slopes = np.asarray([1.0, 1.0], dtype=np.float32)
        out = dense_attention(
            q, k, v, np.asarray([9]), np.arange(10), 1.0, alibi_head_slopes=slopes
        )
        # With equal keys, the ALiBi bias makes recent values dominate.
        assert out[0, 0, 0] > 7.0


class TestFullPrecisionCache:
    def _config(self):
        return ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)

    def test_append_and_attend_matches_dense(self):
        config = self._config()
        cache = FullPrecisionKVCacheLayer(config)
        rng = np.random.default_rng(5)
        k1 = rng.normal(size=(3, 2, 8)).astype(np.float32)
        v1 = rng.normal(size=(3, 2, 8)).astype(np.float32)
        cache.append(k1, v1)
        q = rng.normal(size=(3, 2, 8)).astype(np.float32)
        out = cache.attend(q, np.arange(3), 0.5)
        expected = dense_attention(q, k1, v1, np.arange(3), np.arange(3), 0.5)
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_incremental_equals_batch(self):
        config = self._config()
        rng = np.random.default_rng(6)
        keys = rng.normal(size=(6, 2, 8)).astype(np.float32)
        values = rng.normal(size=(6, 2, 8)).astype(np.float32)
        query = rng.normal(size=(1, 2, 8)).astype(np.float32)

        batch_cache = FullPrecisionKVCacheLayer(config)
        batch_cache.append(keys, values)
        expected = batch_cache.attend(query, np.asarray([5]), 0.4)

        incremental = FullPrecisionKVCacheLayer(config)
        for i in range(6):
            incremental.append(keys[i : i + 1], values[i : i + 1])
        np.testing.assert_allclose(
            incremental.attend(query, np.asarray([5]), 0.4), expected, atol=1e-6
        )

    def test_memory_accounting(self):
        config = self._config()
        cache = FullPrecisionKVCacheLayer(config)
        assert cache.memory_bytes() == 0
        cache.append(np.zeros((4, 2, 8), np.float32), np.zeros((4, 2, 8), np.float32))
        assert cache.memory_bytes() == 4 * 2 * 2 * 8 * 2.0
        assert cache.seq_len == 4

    def test_reset(self):
        config = self._config()
        cache = FullPrecisionKVCacheLayer(config)
        cache.append(np.zeros((2, 2, 8), np.float32), np.zeros((2, 2, 8), np.float32))
        cache.reset()
        assert cache.seq_len == 0
        assert cache.memory_bytes() == 0

    def test_shape_validation(self):
        cache = FullPrecisionKVCacheLayer(self._config())
        with pytest.raises(ValueError):
            cache.append(np.zeros((2, 3, 8), np.float32), np.zeros((2, 3, 8), np.float32))


class TestAttentionBlock:
    def test_forward_shapes_and_cache_growth(self):
        config = ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)
        rng = np.random.default_rng(7)
        def linear(i, o):
            return Linear(rng.normal(0, 0.1, size=(i, o)).astype(np.float32))
        rope = RotaryEmbedding(8, 64)
        block = AttentionBlock(config, linear(16, 16), linear(16, 16), linear(16, 16), linear(16, 16), rope=rope)
        cache = FullPrecisionCacheFactory().create(0, config)
        x = rng.normal(size=(5, 16)).astype(np.float32)
        out = block.forward(x, cache, np.arange(5))
        assert out.shape == (5, 16)
        assert cache.seq_len == 5
        out2 = block.forward(x[:1], cache, np.asarray([5]))
        assert out2.shape == (1, 16)
        assert cache.seq_len == 6

    def test_kv_observer_called(self):
        config = ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)
        rng = np.random.default_rng(8)
        def linear(i, o):
            return Linear(rng.normal(0, 0.1, size=(i, o)).astype(np.float32))
        block = AttentionBlock(config, linear(16, 16), linear(16, 16), linear(16, 16), linear(16, 16))
        cache = FullPrecisionCacheFactory().create(0, config)
        seen = []
        block.forward(
            rng.normal(size=(3, 16)).astype(np.float32),
            cache,
            np.arange(3),
            kv_observer=lambda k, v: seen.append((k.shape, v.shape)),
        )
        assert seen == [((3, 2, 8), (3, 2, 8))]

    def test_input_shape_validation(self):
        config = ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)
        rng = np.random.default_rng(9)
        def linear(i, o):
            return Linear(rng.normal(0, 0.1, size=(i, o)).astype(np.float32))
        block = AttentionBlock(config, linear(16, 16), linear(16, 16), linear(16, 16), linear(16, 16))
        cache = FullPrecisionCacheFactory().create(0, config)
        with pytest.raises(ValueError):
            block.forward(np.zeros((3, 8), np.float32), cache, np.arange(3))
