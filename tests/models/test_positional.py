"""Tests for RoPE, YaRN and ALiBi positional machinery."""

import numpy as np
import pytest

from repro.models.positional import (
    RotaryEmbedding,
    alibi_bias,
    alibi_slopes,
    rope_frequencies,
    yarn_attention_scale,
    yarn_frequencies,
)


class TestRopeFrequencies:
    def test_shape_and_range(self):
        freqs = rope_frequencies(64)
        assert freqs.shape == (32,)
        assert freqs[0] == pytest.approx(1.0)
        assert (np.diff(freqs) < 0).all()

    def test_odd_dim_rejected(self):
        with pytest.raises(Exception):
            rope_frequencies(63)


class TestYarnFrequencies:
    def test_no_scaling_is_identity(self):
        np.testing.assert_allclose(yarn_frequencies(64, scaling_factor=1.0), rope_frequencies(64))

    def test_low_frequencies_interpolated(self):
        base = rope_frequencies(64)
        scaled = yarn_frequencies(64, scaling_factor=16.0, original_max_seq_len=4096)
        # Highest-frequency dims unchanged, lowest-frequency dims divided by ~16.
        assert scaled[0] == pytest.approx(base[0], rel=1e-6)
        assert scaled[-1] == pytest.approx(base[-1] / 16.0, rel=1e-3)

    def test_monotone_between(self):
        base = rope_frequencies(64)
        scaled = yarn_frequencies(64, scaling_factor=8.0, original_max_seq_len=4096)
        ratio = scaled / base
        assert (ratio <= 1.0 + 1e-9).all()
        assert (ratio >= 1.0 / 8.0 - 1e-9).all()

    def test_attention_scale(self):
        assert yarn_attention_scale(1.0) == 1.0
        assert yarn_attention_scale(32.0) > 1.0


class TestRotaryEmbedding:
    def test_norm_preserved(self):
        rope = RotaryEmbedding(32, 128)
        x = np.random.default_rng(0).normal(size=(10, 4, 32)).astype(np.float32)
        rotated = rope.apply(x, np.arange(10))
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-4
        )

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(16, 8)
        x = np.random.default_rng(1).normal(size=(1, 2, 16)).astype(np.float32)
        np.testing.assert_allclose(rope.apply(x, np.asarray([0])), x, atol=1e-6)

    def test_relative_position_property(self):
        # q·k after RoPE depends only on the position difference.
        rope = RotaryEmbedding(32, 64)
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 1, 32)).astype(np.float32)
        k = rng.normal(size=(1, 1, 32)).astype(np.float32)
        def dot(qpos, kpos):
            qr = rope.apply(q, np.asarray([qpos]))
            kr = rope.apply(k, np.asarray([kpos]))
            return float(np.sum(qr * kr))
        assert dot(5, 3) == pytest.approx(dot(12, 10), abs=1e-4)
        assert dot(5, 3) != pytest.approx(dot(12, 3), abs=1e-3)

    def test_position_out_of_range(self):
        rope = RotaryEmbedding(16, 4)
        x = np.zeros((1, 1, 16), dtype=np.float32)
        with pytest.raises(ValueError):
            rope.apply(x, np.asarray([4]))

    def test_bad_shape_rejected(self):
        rope = RotaryEmbedding(16, 4)
        with pytest.raises(ValueError):
            rope.apply(np.zeros((2, 16), dtype=np.float32), np.arange(2))

    def test_yarn_scale_applied(self):
        rope = RotaryEmbedding(16, 1024, scaling_factor=8.0, original_max_seq_len=128)
        assert rope.attention_scale > 1.0


class TestAlibi:
    def test_slopes_power_of_two(self):
        slopes = alibi_slopes(8)
        assert slopes.shape == (8,)
        assert (np.diff(slopes) < 0).all()
        assert slopes[0] == pytest.approx(2 ** (-1.0))

    def test_slopes_non_power_of_two(self):
        slopes = alibi_slopes(6)
        assert slopes.shape == (6,)
        assert (slopes > 0).all()

    def test_bias_zero_at_same_position(self):
        bias = alibi_bias(alibi_slopes(4), np.asarray([3]), np.asarray([3]))
        np.testing.assert_allclose(bias[:, 0, 0], 0.0)

    def test_bias_more_negative_with_distance(self):
        slopes = alibi_slopes(2)
        bias = alibi_bias(slopes, np.asarray([10]), np.asarray([0, 5, 9]))
        assert bias[0, 0, 0] < bias[0, 0, 1] < bias[0, 0, 2] <= 0

    def test_bias_shape(self):
        bias = alibi_bias(alibi_slopes(4), np.arange(3), np.arange(7))
        assert bias.shape == (4, 3, 7)
