"""Tests for the shared k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.kmeans import assign_to_centroids, kmeans


def _blob_data(seed=0, n_per=50, centers=((0, 0), (10, 10), (-10, 5))):
    rng = np.random.default_rng(seed)
    blobs = [rng.normal(c, 0.5, size=(n_per, 2)) for c in centers]
    return np.concatenate(blobs, axis=0)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        data = _blob_data()
        result = kmeans(data, 3, seed=0)
        assert result.n_clusters == 3
        # Each found centroid should be within 1.0 of a true blob centre.
        truth = np.asarray([(0, 0), (10, 10), (-10, 5)], dtype=float)
        for centroid in result.centroids:
            assert np.min(np.linalg.norm(truth - centroid, axis=1)) < 1.0

    def test_inertia_decreases_with_more_clusters(self):
        data = _blob_data(seed=1)
        inertia_2 = kmeans(data, 2, seed=0).inertia
        inertia_6 = kmeans(data, 6, seed=0).inertia
        assert inertia_6 < inertia_2

    def test_deterministic_for_seed(self):
        data = _blob_data(seed=2)
        a = kmeans(data, 4, seed=5)
        b = kmeans(data, 4, seed=5)
        np.testing.assert_allclose(a.centroids, b.centroids)

    def test_assignments_shape_and_range(self):
        data = _blob_data(seed=3)
        result = kmeans(data, 3, seed=0)
        assert result.assignments.shape == (data.shape[0],)
        assert result.assignments.min() >= 0 and result.assignments.max() < 3

    def test_fewer_samples_than_clusters(self):
        data = np.random.default_rng(4).normal(size=(3, 4))
        result = kmeans(data, 8, seed=0)
        assert result.centroids.shape == (8, 4)
        assert result.inertia == 0.0

    def test_1d_input(self):
        data = np.concatenate([np.zeros(20), np.ones(20) * 5])
        result = kmeans(data, 2, seed=0)
        assert sorted(np.round(result.centroids.reshape(-1), 1)) == [0.0, 5.0]

    def test_identical_points(self):
        data = np.ones((30, 3))
        result = kmeans(data, 4, seed=0)
        assert np.isfinite(result.centroids).all()
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_random_init(self):
        data = _blob_data(seed=5)
        result = kmeans(data, 3, seed=0, init="random")
        assert result.inertia < kmeans(data, 1, seed=0).inertia

    def test_invalid_args(self):
        data = _blob_data()
        with pytest.raises(Exception):
            kmeans(data, 0)
        with pytest.raises(Exception):
            kmeans(data, 2, n_iters=0)
        with pytest.raises(Exception):
            kmeans(data, 2, init="fancy")

    @given(
        n=st.integers(min_value=5, max_value=80),
        k=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_assignments_are_nearest_property(self, n, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        result = kmeans(data, k, seed=seed)
        recomputed = assign_to_centroids(data, result.centroids)
        # Nearest-centroid distances of the recomputed assignment must not
        # exceed those of the returned assignment.
        def total_distance(assignment):
            return float(
                np.sum(np.linalg.norm(data - result.centroids[assignment], axis=1) ** 2)
            )
        assert total_distance(recomputed) <= total_distance(result.assignments) + 1e-6


class TestAssignToCentroids:
    def test_nearest(self):
        centroids = np.asarray([[0.0, 0.0], [10.0, 10.0]])
        data = np.asarray([[1.0, 0.5], [9.0, 9.5]])
        np.testing.assert_array_equal(assign_to_centroids(data, centroids), [0, 1])

    def test_1d(self):
        centroids = np.asarray([[0.0], [4.0]])
        np.testing.assert_array_equal(
            assign_to_centroids(np.asarray([0.1, 3.0, 5.0]), centroids), [0, 1, 1]
        )
