"""Tests for uniform integer quantization (Eq. 2/3) and its granularities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.integer import (
    dequantize_uniform,
    quantization_mse,
    quantization_snr_db,
    quantize_groupwise,
    quantize_uniform,
)


class TestQuantizeUniform:
    def test_codes_in_range_asymmetric(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 32)).astype(np.float32)
        q = quantize_uniform(x, nbits=4)
        assert q.codes.min() >= 0 and q.codes.max() <= 15

    def test_codes_in_range_symmetric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 32)).astype(np.float32)
        q = quantize_uniform(x, nbits=4, symmetric=True)
        assert q.codes.min() >= -8 and q.codes.max() <= 7

    def test_roundtrip_error_bounded_by_step(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(100, 16)).astype(np.float32)
        q = quantize_uniform(x, nbits=8)
        step = float(q.params.scale.max())
        assert np.abs(q.dequantize() - x).max() <= step * 0.51 + 1e-6

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(128, 64)).astype(np.float32)
        errors = [
            quantization_mse(x, quantize_uniform(x, nbits=b).dequantize()) for b in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_per_channel_beats_per_tensor_with_channel_outliers(self):
        """The motivation of Fig. 2: outlier channels ruin per-tensor quantization.

        With one boosted channel, per-tensor scales stretch to cover it and the
        *other* channels lose nearly all resolution; per-channel parameters keep
        their resolution intact.
        """
        rng = np.random.default_rng(4)
        x = rng.normal(size=(256, 32)).astype(np.float32)
        x[:, 3] *= 50.0  # one outlier channel
        normal_channels = [c for c in range(32) if c != 3]
        per_tensor = quantize_uniform(x, 4).dequantize()
        per_channel = quantize_uniform(x, 4, keep_axes=(1,)).dequantize()
        mse_tensor = quantization_mse(x[:, normal_channels], per_tensor[:, normal_channels])
        mse_channel = quantization_mse(x[:, normal_channels], per_channel[:, normal_channels])
        assert mse_channel < mse_tensor / 10
        # Overall error (outlier channel included) is also better per-channel.
        assert quantization_mse(x, per_channel) < quantization_mse(x, per_tensor)

    def test_per_token_granularity(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 16)).astype(np.float32)
        q = quantize_uniform(x, 4, keep_axes=(0,))
        assert q.params.scale.shape == (8, 1)

    def test_constant_tensor(self):
        x = np.full((4, 4), 3.25, dtype=np.float32)
        q = quantize_uniform(x, 4)
        np.testing.assert_allclose(q.dequantize(), x, atol=1e-3)

    def test_memory_accounting(self):
        x = np.zeros((100, 64), dtype=np.float32)
        q = quantize_uniform(x, 4)
        assert q.memory_bytes() == pytest.approx(100 * 64 * 0.5 + 2 * 2.0)

    def test_invalid_bits(self):
        with pytest.raises(Exception):
            quantize_uniform(np.zeros((2, 2)), 0)
        with pytest.raises(Exception):
            quantize_uniform(np.zeros((2, 2)), 20)

    @given(
        nbits=st.integers(min_value=2, max_value=8),
        symmetric=st.booleans(),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_dequantized_within_range_property(self, nbits, symmetric, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(20, 6)).astype(np.float32) * rng.uniform(0.1, 10)
        q = quantize_uniform(x, nbits, symmetric=symmetric)
        x_hat = q.dequantize()
        margin = float(q.params.scale.max()) + 1e-5
        assert x_hat.min() >= x.min() - margin
        assert x_hat.max() <= x.max() + margin


class TestGroupwise:
    def test_shape_preserved(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(10, 70)).astype(np.float32)
        _, reconstructed = quantize_groupwise(x, 4, group_size=32, axis=1)
        assert reconstructed.shape == x.shape

    def test_groupwise_beats_per_tensor_on_token_outliers(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(64, 64)).astype(np.float32)
        x[10] *= 30.0
        _, grouped = quantize_groupwise(x, 4, group_size=8, axis=0)
        per_tensor = quantize_uniform(x, 4).dequantize()
        assert quantization_mse(x, grouped) < quantization_mse(x, per_tensor)

    def test_group_size_one_is_per_element_exact(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(5, 6)).astype(np.float32)
        _, reconstructed = quantize_groupwise(x, 8, group_size=1, axis=1)
        np.testing.assert_allclose(reconstructed, x, atol=1e-5)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        x = np.random.default_rng(9).normal(size=(4, 4))
        assert quantization_mse(x, x) == 0.0

    def test_snr_improves_with_bits(self):
        x = np.random.default_rng(10).normal(size=(256, 16)).astype(np.float32)
        snr4 = quantization_snr_db(x, quantize_uniform(x, 4).dequantize())
        snr8 = quantization_snr_db(x, quantize_uniform(x, 8).dequantize())
        assert snr8 > snr4 > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantization_mse(np.zeros((2, 2)), np.zeros((3, 2)))
