"""Tests for the KIVI/KVQuant quantizers and their streaming cache adapters."""

import numpy as np
import pytest

from repro.models.attention_math import dense_attention
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionKVCacheLayer
from repro.quant.cache_adapters import KiviCacheFactory, KiviKVCache, KVQuantCacheFactory, KVQuantKVCache
from repro.quant.kivi import KiviConfig, KiviQuantizer
from repro.quant.kvquant import KVQuantQuantizer


@pytest.fixture(scope="module")
def cache_config():
    return ModelConfig(vocab_size=64, d_model=32, n_layers=1, n_heads=2, max_seq_len=256)


@pytest.fixture(scope="module")
def kv_stream(cache_config):
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(96, 2, 16)).astype(np.float32)
    keys[:, :, 3] *= 8.0  # channel outlier, as in real key caches
    values = rng.normal(size=(96, 2, 16)).astype(np.float32)
    return keys, values


@pytest.fixture(scope="module")
def fitted_kvquant(kv_stream):
    keys, values = kv_stream
    quantizer = KVQuantQuantizer(nbits=4, seed=0)
    quantizer.fit(keys.reshape(96, -1), values.reshape(96, -1))
    return quantizer


class TestKiviQuantizer:
    def test_key_value_granularity(self):
        quantizer = KiviQuantizer(KiviConfig(nbits=4))
        block = np.random.default_rng(1).normal(size=(16, 32)).astype(np.float32)
        key_q = quantizer.quantize_keys(block)
        value_q = quantizer.quantize_values(block)
        assert key_q.params.scale.shape == (1, 32)   # per-channel
        assert value_q.params.scale.shape == (16, 1)  # per-token

    def test_reconstruction_reasonable(self):
        quantizer = KiviQuantizer(KiviConfig(nbits=8))
        block = np.random.default_rng(2).normal(size=(32, 16)).astype(np.float32)
        np.testing.assert_allclose(quantizer.quantize_keys(block).dequantize(), block, atol=0.05)

    def test_invalid_config(self):
        with pytest.raises(Exception):
            KiviConfig(nbits=0)
        with pytest.raises(Exception):
            KiviConfig(key_granularity="per-row")


class TestKVQuantQuantizer:
    def test_requires_fit(self):
        quantizer = KVQuantQuantizer(nbits=4)
        with pytest.raises(RuntimeError):
            quantizer.encode_keys(np.zeros((2, 4), dtype=np.float32))

    def test_key_roundtrip(self, fitted_kvquant, kv_stream):
        keys, _ = kv_stream
        flat = keys.reshape(96, -1)
        decoded = fitted_kvquant.decode_keys(fitted_kvquant.encode_keys(flat))
        assert decoded.shape == flat.shape
        # Non-uniform per-channel codebooks keep the relative error modest
        # even with the boosted outlier channel.
        rel_error = np.linalg.norm(decoded - flat) / np.linalg.norm(flat)
        assert rel_error < 0.2

    def test_value_roundtrip(self, fitted_kvquant, kv_stream):
        _, values = kv_stream
        flat = values.reshape(96, -1)
        decoded = fitted_kvquant.decode_values(fitted_kvquant.encode_values(flat))
        rel_error = np.linalg.norm(decoded - flat) / np.linalg.norm(flat)
        assert rel_error < 0.25

    def test_outlier_isolation_improves_low_bits(self, kv_stream):
        keys, values = kv_stream
        flat_keys = keys.reshape(96, -1).copy()
        rng = np.random.default_rng(3)
        flat_keys[rng.random(flat_keys.shape) < 0.01] *= 30.0
        flat_values = values.reshape(96, -1)

        plain = KVQuantQuantizer(nbits=2, seed=0).fit(flat_keys, flat_values)
        isolated = KVQuantQuantizer(nbits=2, outlier_fraction=0.01, seed=0).fit(
            flat_keys, flat_values
        )
        err_plain = np.linalg.norm(plain.decode_keys(plain.encode_keys(flat_keys)) - flat_keys)
        err_isolated = np.linalg.norm(
            isolated.decode_keys(isolated.encode_keys(flat_keys)) - flat_keys
        )
        assert err_isolated < err_plain

    def test_memory_accounting(self, fitted_kvquant, kv_stream):
        keys, _ = kv_stream
        block = fitted_kvquant.encode_keys(keys.reshape(96, -1))
        assert block.memory_bytes() >= 96 * 32 * 4 / 8.0
        assert fitted_kvquant.codebook_bytes() > 0


class _CacheAttentionMixin:
    """Shared check: quantized-cache attention approximates exact attention."""

    @staticmethod
    def reference_attention(keys, values, queries, q_positions, scale):
        k_positions = np.arange(keys.shape[0])
        return dense_attention(queries, keys, values, q_positions, k_positions, scale)


class TestKiviKVCache(_CacheAttentionMixin):
    def test_streaming_attention_close_to_exact(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = KiviKVCache(cache_config, KiviConfig(nbits=8, group_size=16, residual_length=16))
        rng = np.random.default_rng(4)
        for start in range(0, 96, 16):
            cache.append(keys[start : start + 16], values[start : start + 16])
        queries = rng.normal(size=(1, 2, 16)).astype(np.float32)
        out = cache.attend(queries, np.asarray([95]), 0.25)
        expected = self.reference_attention(keys, values, queries, np.asarray([95]), 0.25)
        np.testing.assert_allclose(out, expected, atol=0.05)

    def test_pending_tokens_stay_full_precision(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = KiviKVCache(cache_config, KiviConfig(nbits=2, group_size=32, residual_length=32))
        cache.append(keys[:8], values[:8])
        assert cache.stored_tokens == 0 and cache.pending_tokens == 8

    def test_memory_smaller_than_fp16(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = KiviKVCache(cache_config, KiviConfig(nbits=4, group_size=16, residual_length=0))
        fp16 = FullPrecisionKVCacheLayer(cache_config)
        for start in range(0, 96, 16):
            cache.append(keys[start : start + 16], values[start : start + 16])
            fp16.append(keys[start : start + 16], values[start : start + 16])
        cache.append(keys[:1], values[:1])  # trigger a flush of the last group
        assert cache.memory_bytes() < fp16.memory_bytes()
        assert cache.compression_ratio() > 2.0

    def test_factory(self, cache_config):
        factory = KiviCacheFactory(KiviConfig(nbits=4))
        cache = factory.create(0, cache_config)
        assert isinstance(cache, KiviKVCache)


class TestKVQuantKVCache(_CacheAttentionMixin):
    def test_attention_close_to_exact(self, cache_config, kv_stream, fitted_kvquant):
        keys, values = kv_stream
        cache = KVQuantKVCache(cache_config, fitted_kvquant)
        cache.append(keys[:64], values[:64])
        cache.append(keys[64:80], values[64:80])  # first block gets quantized
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(2, 2, 16)).astype(np.float32)
        out = cache.attend(queries, np.asarray([78, 79]), 0.25)
        expected = self.reference_attention(
            keys[:80], values[:80], queries, np.asarray([78, 79]), 0.25
        )
        np.testing.assert_allclose(out, expected, atol=0.25)
        assert cache.stored_tokens == 64 and cache.pending_tokens == 16

    def test_requires_fitted_quantizer(self, cache_config):
        with pytest.raises(Exception):
            KVQuantKVCache(cache_config, KVQuantQuantizer(nbits=4))

    def test_factory_missing_layer(self, cache_config, fitted_kvquant):
        factory = KVQuantCacheFactory({0: fitted_kvquant})
        assert isinstance(factory.create(0, cache_config), KVQuantKVCache)
        with pytest.raises(KeyError):
            factory.create(1, cache_config)

    def test_reset(self, cache_config, kv_stream, fitted_kvquant):
        keys, values = kv_stream
        cache = KVQuantKVCache(cache_config, fitted_kvquant)
        cache.append(keys[:16], values[:16])
        cache.append(keys[16:32], values[16:32])
        cache.reset()
        assert cache.seq_len == 0 and cache.stored_tokens == 0 and cache.pending_tokens == 0
