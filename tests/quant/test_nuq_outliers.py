"""Tests for non-uniform quantization and outlier isolation."""

import numpy as np
import pytest

from repro.quant.integer import quantization_mse, quantize_uniform
from repro.quant.nuq import NonUniformQuantizer1D
from repro.quant.outliers import (
    SparseOutliers,
    outlier_channel_indices,
    outlier_threshold,
    split_outliers,
)


class TestNonUniformQuantizer:
    def test_roundtrip_shape(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(500, 8)).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=4).fit(data, seed=0)
        codes = quantizer.encode(data[:50])
        assert codes.shape == (50, 8)
        assert quantizer.decode(codes).shape == (50, 8)

    def test_codes_within_levels(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(300, 4)).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=3).fit(data, seed=0)
        codes = quantizer.encode(data)
        assert codes.max() < 8

    def test_beats_uniform_on_clustered_data(self):
        """Non-uniform levels adapt to clustered (non-uniform) distributions.

        With data concentrated around a few modes, a 2-bit uniform grid wastes
        levels between the modes while k-means places its levels on them.
        """
        rng = np.random.default_rng(2)
        modes = np.asarray([-6.0, -0.5, 0.7, 5.0])
        assignments = rng.integers(0, 4, size=(2000, 4))
        data = (modes[assignments] + rng.normal(0, 0.05, size=(2000, 4))).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=2).fit(data, seed=0)
        nuq_mse = quantization_mse(data, quantizer.quantize(data))
        uniform_mse = quantization_mse(data, quantize_uniform(data, 2, keep_axes=(1,)).dequantize())
        assert nuq_mse < uniform_mse / 2

    def test_unfitted_raises(self):
        quantizer = NonUniformQuantizer1D(nbits=4)
        with pytest.raises(RuntimeError):
            quantizer.encode(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(RuntimeError):
            quantizer.decode(np.zeros((2, 2), dtype=np.uint8))

    def test_channel_mismatch_rejected(self):
        data = np.random.default_rng(3).normal(size=(100, 4)).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=2).fit(data, seed=0)
        with pytest.raises(Exception):
            quantizer.encode(np.zeros((10, 5), dtype=np.float32))

    def test_codebook_bytes(self):
        data = np.random.default_rng(4).normal(size=(100, 4)).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=2).fit(data, seed=0)
        assert quantizer.codebook_bytes() == 4 * 4 * 2.0

    def test_monotone_levels(self):
        data = np.random.default_rng(5).normal(size=(200, 3)).astype(np.float32)
        quantizer = NonUniformQuantizer1D(nbits=3).fit(data, seed=0)
        assert (np.diff(quantizer.levels, axis=1) >= 0).all()


class TestOutlierThreshold:
    def test_fraction_zero(self):
        assert outlier_threshold(np.ones(10), 0.0) == float("inf")

    def test_top_fraction(self):
        x = np.arange(100, dtype=np.float32)
        threshold = outlier_threshold(x, 0.1)
        assert threshold == pytest.approx(90.0)

    def test_invalid_fraction(self):
        with pytest.raises(Exception):
            outlier_threshold(np.ones(4), 1.5)


class TestSplitOutliers:
    def test_counts_and_restoration(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(100, 10)).astype(np.float32)
        x[5, 5] = 100.0
        clamped, sparse = split_outliers(x, 0.01)
        assert sparse.count == pytest.approx(0.01 * x.size, abs=3)
        assert np.abs(clamped).max() < 100.0
        restored = sparse.restore(clamped)
        assert restored[5, 5] == pytest.approx(100.0)

    def test_restore_shape_check(self):
        x = np.random.default_rng(7).normal(size=(10, 4)).astype(np.float32)
        _, sparse = split_outliers(x, 0.05)
        with pytest.raises(ValueError):
            sparse.restore(np.zeros((4, 10), dtype=np.float32))

    def test_zero_fraction_identity(self):
        x = np.random.default_rng(8).normal(size=(20, 3)).astype(np.float32)
        clamped, sparse = split_outliers(x, 0.0)
        np.testing.assert_array_equal(clamped, x)
        assert sparse.count == 0
        assert sparse.memory_bytes() == 0.0

    def test_quantization_improves_after_outlier_removal(self):
        """The Table III mechanism: clamping outliers shrinks the range."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(256, 16)).astype(np.float32)
        x[rng.random(x.shape) < 0.01] *= 40.0
        direct = quantization_mse(x, quantize_uniform(x, 3).dequantize())
        clamped, sparse = split_outliers(x, 0.01)
        filtered = sparse.restore(quantize_uniform(clamped, 3).dequantize())
        assert quantization_mse(x, filtered) < direct / 5

    def test_memory_bytes(self):
        x = np.zeros((10, 10), dtype=np.float32)
        x[0, 0] = 5.0
        _, sparse = split_outliers(x, 0.01)
        assert sparse.memory_bytes() == sparse.count * 6.0


class TestOutlierChannels:
    def test_detects_boosted_channel(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(500, 16))
        x[:, 11] *= 20.0
        channels = outlier_channel_indices(x, fraction=0.1, axis=1)
        assert 11 in channels.tolist()

    def test_zero_fraction(self):
        assert outlier_channel_indices(np.ones((5, 5)), 0.0).size == 0
