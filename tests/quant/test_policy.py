"""Tests for the mixed-precision quantization policy layer.

Covers the policy document itself (validation, serialization round-trip,
model fingerprinting), sensitivity-driven policy derivation (budget
feasibility, monotonicity, determinism, scheme restriction) and the
head-group cache composition — including the load-bearing invariant that a
uniform-equivalent policy runs bit-identically to the plain uniform path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import measure_sensitivity
from repro.models.kv_cache import FullPrecisionKVCacheLayer
from repro.quant.policy import (
    DEFAULT_LADDER,
    HeadAssignment,
    QuantPolicy,
    derive_policy,
    million_variant,
)
from repro.quant.policy_cache import (
    HeadGroupKVCache,
    PolicyCacheFactory,
    head_subset_config,
)


@pytest.fixture(scope="module")
def sensitivity(kv_samples):
    return measure_sensitivity(kv_samples, kmeans_iters=2, max_tokens=512)


class TestHeadAssignment:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(Exception):
            HeadAssignment("int4", 4)

    def test_fp16_must_declare_16_bits(self):
        with pytest.raises(Exception):
            HeadAssignment("fp16", 4)

    def test_quantized_bits_range(self):
        with pytest.raises(Exception):
            HeadAssignment("million", 0)
        with pytest.raises(Exception):
            HeadAssignment("kivi", 12)

    def test_bytes_per_token(self):
        head_dim = 32
        assert HeadAssignment("fp16", 16).bytes_per_token(head_dim) == 2 * head_dim * 2
        assert HeadAssignment("kivi", 4).bytes_per_token(head_dim) == 2 * head_dim * 4 / 8
        million = HeadAssignment("million", 4)
        config = million_variant(head_dim, 4)
        assert million.bytes_per_token(head_dim) == 2 * config.m_subspaces * config.nbits / 8

    def test_json_round_trip(self):
        assignment = HeadAssignment("kvquant", 4)
        assert HeadAssignment.from_json(assignment.to_json()) == assignment


class TestQuantPolicy:
    def test_uniform_covers_all_heads(self, tiny_config):
        policy = QuantPolicy.uniform(tiny_config, "million", 4)
        assert policy.is_uniform
        assert policy.schemes_used() == {"million"}
        for layer in range(tiny_config.n_layers):
            groups = policy.head_groups(layer)
            assert len(groups) == 1
            assert groups[1 - 1][1] == tuple(range(tiny_config.kv_heads))

    def test_head_groups_partition_heads(self, tiny_config):
        rows = [
            [
                HeadAssignment("million", 8 if head == 0 else 4)
                for head in range(tiny_config.kv_heads)
            ]
            for _ in range(tiny_config.n_layers)
        ]
        policy = QuantPolicy(
            tiny_config.n_layers, tiny_config.kv_heads, tiny_config.head_dim, rows
        )
        assert not policy.is_uniform
        for layer in range(tiny_config.n_layers):
            covered = [h for _, heads in policy.head_groups(layer) for h in heads]
            assert sorted(covered) == list(range(tiny_config.kv_heads))

    def test_serialization_round_trip(self, tiny_config, tmp_path):
        rows = [
            [
                HeadAssignment(*(("fp16", 16) if (layer + head) % 3 == 0 else ("million", 4)))
                for head in range(tiny_config.kv_heads)
            ]
            for layer in range(tiny_config.n_layers)
        ]
        policy = QuantPolicy(
            tiny_config.n_layers,
            tiny_config.kv_heads,
            tiny_config.head_dim,
            rows,
            model_name=tiny_config.name,
        )
        assert QuantPolicy.from_json(policy.to_json()) == policy
        path = tmp_path / "policy.json"
        policy.save(path)
        loaded = QuantPolicy.load(path)
        assert loaded == policy
        assert loaded.bytes_per_token() == policy.bytes_per_token()

    def test_validate_for_model_rejects_mismatch(self, tiny_config, gqa_config):
        policy = QuantPolicy.uniform(tiny_config, "million", 4)
        policy.validate_for_model(tiny_config)
        with pytest.raises(Exception):
            policy.validate_for_model(gqa_config)

    def test_from_json_rejects_foreign_documents(self):
        with pytest.raises(Exception):
            QuantPolicy.from_json({"format": "something-else", "version": 1})


class TestDerivePolicy:
    def test_budget_is_respected(self, tiny_config, sensitivity):
        cheapest = QuantPolicy.uniform(tiny_config, "million", 2).bytes_per_token()
        richest = QuantPolicy.uniform(tiny_config, "fp16", 16).bytes_per_token()
        for budget in np.linspace(cheapest, richest, 7):
            policy = derive_policy(tiny_config, sensitivity, float(budget))
            assert policy.bytes_per_token() <= float(budget) + 1e-9

    def test_generous_budget_reaches_top_rung(self, tiny_config, sensitivity):
        budget = 10 * QuantPolicy.uniform(tiny_config, "fp16", 16).bytes_per_token()
        policy = derive_policy(tiny_config, sensitivity, budget)
        assert policy == QuantPolicy.uniform(
            tiny_config, DEFAULT_LADDER[-1].scheme, DEFAULT_LADDER[-1].bits
        )

    def test_minimal_budget_is_cheapest_uniform(self, tiny_config, sensitivity):
        cheapest = QuantPolicy.uniform(
            tiny_config, DEFAULT_LADDER[0].scheme, DEFAULT_LADDER[0].bits
        )
        policy = derive_policy(tiny_config, sensitivity, cheapest.bytes_per_token())
        assert policy == cheapest

    def test_bytes_monotonic_in_budget(self, tiny_config, sensitivity):
        cheapest = QuantPolicy.uniform(tiny_config, "million", 2).bytes_per_token()
        richest = QuantPolicy.uniform(tiny_config, "fp16", 16).bytes_per_token()
        previous = 0.0
        for budget in np.linspace(cheapest, richest, 9):
            spent = derive_policy(tiny_config, sensitivity, float(budget)).bytes_per_token()
            assert spent >= previous - 1e-9
            previous = spent

    def test_deterministic(self, tiny_config, sensitivity):
        budget = 1.5 * QuantPolicy.uniform(tiny_config, "million", 4).bytes_per_token()
        assert derive_policy(tiny_config, sensitivity, budget) == derive_policy(
            tiny_config, sensitivity, budget
        )

    def test_scheme_restriction(self, tiny_config, sensitivity):
        budget = QuantPolicy.uniform(tiny_config, "fp16", 16).bytes_per_token()
        policy = derive_policy(
            tiny_config, sensitivity, budget, schemes=("million",)
        )
        assert policy.schemes_used() == {"million"}

    def test_infeasible_budget_rejected(self, tiny_config, sensitivity):
        with pytest.raises(Exception):
            derive_policy(tiny_config, sensitivity, 0.0)


class TestHeadSubsetConfig:
    def test_preserves_gqa_ratio(self, gqa_config):
        sub = head_subset_config(gqa_config, 1)
        assert sub.kv_heads == 1
        assert sub.gqa_group_size == gqa_config.gqa_group_size
        assert sub.head_dim == gqa_config.head_dim


def _random_stream(config, n_tokens, seed):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(n_tokens, config.kv_heads, config.head_dim))
    values = rng.normal(size=(n_tokens, config.kv_heads, config.head_dim))
    return keys.astype(np.float32), values.astype(np.float32)


def _split_cache(config, split):
    groups = []
    for heads in split:
        sub_config = head_subset_config(config, len(heads))
        groups.append((heads, FullPrecisionKVCacheLayer(sub_config)))
    return HeadGroupKVCache(config, groups)


@pytest.mark.parametrize("config_name", ["tiny_config", "gqa_config"])
def test_head_group_attention_matches_single_cache(config_name, request):
    """Splitting a layer across sub-caches must not change attention at all."""
    config = request.getfixturevalue(config_name)
    single = FullPrecisionKVCacheLayer(config)
    kv_heads = config.kv_heads
    split = [(h,) for h in range(kv_heads)]
    grouped = _split_cache(config, split)
    keys, values = _random_stream(config, 24, seed=3)
    single.append(keys, values)
    grouped.append(keys, values)
    assert grouped.seq_len == single.seq_len

    rng = np.random.default_rng(4)
    queries = rng.normal(size=(2, config.n_heads, config.head_dim)).astype(np.float32)
    positions = np.array([24, 25], dtype=np.int64)
    scale = 1.0 / np.sqrt(config.head_dim)
    slopes = None
    if config.positional == "alibi":
        slopes = np.geomspace(
            1.0, 2.0 ** -(config.n_heads - 1), config.n_heads
        ).astype(np.float32)
    out_single = single.attend(queries, positions, scale, alibi_head_slopes=slopes)
    out_grouped = grouped.attend(queries, positions, scale, alibi_head_slopes=slopes)
    np.testing.assert_array_equal(out_grouped, out_single)


def test_head_group_memory_and_compression(tiny_config):
    split = [(0,), (1,)]
    grouped = _split_cache(tiny_config, split)
    keys, values = _random_stream(tiny_config, 16, seed=5)
    grouped.append(keys, values)
    assert grouped.memory_bytes() > 0
    assert grouped.compression_ratio() == pytest.approx(1.0)


class TestPolicyCacheFactory:
    def test_uniform_policy_token_identical_to_uniform_path(
        self, tiny_model, tiny_config, million_factory
    ):
        """The tentpole invariant: a uniform policy IS the uniform path."""
        policy = QuantPolicy.uniform(
            tiny_config, "million", 4
        )
        factory = PolicyCacheFactory.from_million_factory(
            million_factory, policy, tiny_config
        )
        prompt = np.arange(1, 25, dtype=np.int64) % tiny_config.vocab_size

        tiny_model.reset_cache(million_factory)
        baseline = tiny_model.generate(prompt, max_new_tokens=12)
        tiny_model.reset_cache(factory)
        policied = tiny_model.generate(prompt, max_new_tokens=12)
        assert list(baseline) == list(policied)

    def test_mixed_policy_generates(self, tiny_model, tiny_config, kv_samples):
        from repro.core.calibration import build_policy_factory

        rows = [
            [
                HeadAssignment(*(("fp16", 16) if head == 0 else ("kivi", 4)))
                for head in range(tiny_config.kv_heads)
            ]
            for _ in range(tiny_config.n_layers)
        ]
        policy = QuantPolicy(
            tiny_config.n_layers,
            tiny_config.kv_heads,
            tiny_config.head_dim,
            rows,
        )
        factory = build_policy_factory(kv_samples, policy, tiny_config)
        cache = factory.create(0, tiny_config)
        assert isinstance(cache, HeadGroupKVCache)
        prompt = np.arange(1, 17, dtype=np.int64) % tiny_config.vocab_size
        tiny_model.reset_cache(factory)
        tokens = tiny_model.generate(prompt, max_new_tokens=8)
        assert len(tokens) == 8

    def test_million_config_only_for_uniform_million(
        self, tiny_config, million_factory
    ):
        policy = QuantPolicy.uniform(
            tiny_config, "million", 4
        )
        factory = PolicyCacheFactory.from_million_factory(
            policy=policy, model_config=tiny_config, factory=million_factory
        )
        assert factory.million_config is million_factory.million_config
        assert factory.bytes_per_token() == policy.bytes_per_token()
