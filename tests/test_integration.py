"""Cross-module integration tests.

These exercise full pipelines — calibration on one model family, inference
under every cache scheme, the engine, the perf model and the evaluation
harness working together — rather than single modules.
"""

import numpy as np
import pytest

from repro.core import MillionConfig, MillionEngine, calibrate_million
from repro.data import load_corpus
from repro.eval import (
    build_cache_factory,
    compute_perplexity,
    evaluate_task,
    logit_fidelity,
    longbench_tasks,
)
from repro.models import available_models, load_model
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.perf import LLAMA_2_7B, MILLION_4BIT, estimate_tpot, kv_cache_bytes


@pytest.mark.parametrize("model_name", available_models())
def test_million_runs_on_every_zoo_model(model_name):
    """Calibrate + decode with MILLION on every positional-embedding family."""
    model = load_model(model_name, seed=0, max_seq_len=512)
    calibration = load_corpus("wikitext2-syn", "train", 192) % model.config.vocab_size
    config = MillionConfig.for_equivalent_bits(
        model.config.head_dim, bits=4, kmeans_iters=3, calibration_samples=384
    )
    engine = MillionEngine.calibrate(model, calibration, config)
    prompt = load_corpus("wikitext2-syn", "test", 48) % model.config.vocab_size
    generated = engine.generate(prompt, max_new_tokens=4)
    assert generated.shape == (4,)
    stats = engine.cache_stats()
    assert stats.context_length == 48 + 4 - 1 or stats.context_length == 48 + 4
    assert stats.quantized_tokens > 0


def test_gqa_model_with_million_matches_dequantized_reference(gqa_model, gqa_config):
    """MILLION's ADC path must agree with explicit dequantization under GQA."""
    calibration = load_corpus("wikitext2-syn", "train", 256) % gqa_config.vocab_size
    config = MillionConfig.for_equivalent_bits(
        gqa_config.head_dim, bits=4, kmeans_iters=3, calibration_samples=512
    )
    factory = calibrate_million(gqa_model, calibration, config)
    test = load_corpus("wikitext2-syn", "test", 96) % gqa_config.vocab_size
    gqa_model.reset_cache(factory)
    logits_chunks = [gqa_model.forward(test[i : i + 16]) for i in range(0, 96, 16)]
    logits = np.concatenate(logits_chunks)
    assert np.isfinite(logits).all()
    fidelity = logit_fidelity(gqa_model, test, factory, chunk_size=16)
    assert fidelity.top1_agreement > 0.3
    gqa_model.reset_cache(FullPrecisionCacheFactory())


def test_perplexity_window_excludes_reset_positions(tiny_model, test_tokens):
    full = compute_perplexity(tiny_model, test_tokens[:128], chunk_size=16)
    windowed = compute_perplexity(tiny_model, test_tokens[:128], chunk_size=16, window=64)
    assert windowed.n_tokens < full.n_tokens
    assert np.isfinite(windowed.perplexity)


def test_windowed_context_matters(tiny_model, test_tokens):
    """Shrinking the usable context must not reduce perplexity dramatically."""
    long_ctx = compute_perplexity(tiny_model, test_tokens[:192], chunk_size=16, window=192)
    short_ctx = compute_perplexity(tiny_model, test_tokens[:192], chunk_size=16, window=16)
    assert short_ctx.perplexity > 0.8 * long_ctx.perplexity


def test_engine_cache_memory_consistent_with_perf_model(tiny_model, million_factory):
    """The measured code footprint tracks the analytic per-token estimate."""
    engine = MillionEngine(tiny_model, million_factory)
    tokens = load_corpus("wikitext2-syn", "test", 256) % tiny_model.config.vocab_size
    engine.reset()
    for start in range(0, 256, 64):
        engine.prefill(tokens[start : start + 64]) if start == 0 else engine.model.forward(
            tokens[start : start + 64]
        )
    stats = engine.cache_stats()
    config = tiny_model.config
    bits = million_factory.bits_per_value(config.head_dim)
    expected_code_bytes = stats.quantized_tokens * 2 * config.kv_dim * bits / 8 * config.n_layers
    expected_recent_bytes = stats.recent_tokens * 2 * config.kv_dim * 2.0 * config.n_layers
    codebook_bytes = sum(
        cache.key_pq.codebook_memory_bytes() + cache.value_pq.codebook_memory_bytes()
        for cache in engine.model.caches
    )
    measured_data_bytes = stats.memory_bytes - codebook_bytes
    assert measured_data_bytes == pytest.approx(
        expected_code_bytes + expected_recent_bytes, rel=0.25
    )
    tiny_model.reset_cache(FullPrecisionCacheFactory())


def test_perf_and_functional_compression_agree():
    """The perf model's 4x KV shrink matches the functional cache's bit budget."""
    fp16 = kv_cache_bytes(LLAMA_2_7B, MILLION_4BIT, 1024) / kv_cache_bytes(
        LLAMA_2_7B, MILLION_4BIT.with_updates(kv_bits=16.0, codebook_bytes_per_layer=0.0), 1024
    )
    config = MillionConfig.for_equivalent_bits(128, 4)
    assert fp16 == pytest.approx(config.bits_per_value(128) / 16.0, rel=0.1)


def test_longbench_task_under_quantized_cache(tiny_model, million_factory):
    task = longbench_tasks(context_length=192)["passage_retrieval_en"]
    result = evaluate_task(
        tiny_model, task, million_factory, n_examples=1, seed=2, scheme_name="million-4b"
    )
    assert 0.0 <= result.score <= 100.0
    tiny_model.reset_cache(FullPrecisionCacheFactory())


def test_scheme_factories_are_reusable_across_contexts(tiny_model, calibration_tokens):
    """A calibrated factory can be reused for many independent generations."""
    factory = build_cache_factory(
        "million-4b", tiny_model, calibration_tokens, kmeans_iters=3, calibration_samples=512
    )
    outputs = []
    for start in (0, 32, 64):
        tiny_model.reset_cache(factory)
        prompt = calibration_tokens[start : start + 24]
        logits = tiny_model.prefill(prompt)
        outputs.append(np.argmax(logits[-1]))
    assert len(outputs) == 3
    tiny_model.reset_cache(FullPrecisionCacheFactory())


def test_perf_model_tpot_monotone_in_context():
    previous = 0.0
    for prefill in (1024, 4096, 16384, 65536):
        result = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, prefill)
        assert not result.oom
        assert result.tpot_ms > previous
        previous = result.tpot_ms
