"""Tests for scoring metrics, perplexity and fidelity evaluation."""

import numpy as np
import pytest

from repro.eval.metrics import (
    exact_match,
    mean_kl_divergence,
    relative_loss_percent,
    rouge_like_overlap,
    token_accuracy,
    token_f1,
    top1_agreement,
)
from repro.eval.perplexity import compute_perplexity, logit_fidelity, perplexity_by_scheme
from repro.models.kv_cache import FullPrecisionCacheFactory


class TestMetrics:
    def test_exact_match(self):
        assert exact_match([1, 2, 3], [1, 2, 3]) == 1.0
        assert exact_match([1, 2, 3, 9], [1, 2, 3]) == 1.0  # prefix match
        assert exact_match([1, 2], [1, 2, 3]) == 0.0
        assert exact_match([], []) == 1.0

    def test_token_accuracy(self):
        assert token_accuracy([1, 2, 3], [1, 9, 3]) == pytest.approx(2 / 3)
        assert token_accuracy([1], [1, 2]) == pytest.approx(0.5)

    def test_token_f1(self):
        assert token_f1([1, 2, 3], [1, 2, 3]) == 1.0
        assert token_f1([1, 2], [3, 4]) == 0.0
        assert 0 < token_f1([1, 2, 9], [1, 2, 3]) < 1.0
        assert token_f1([], []) == 1.0

    def test_rouge_like(self):
        assert rouge_like_overlap([1, 2, 3, 4], [1, 2, 3, 4]) == 1.0
        assert rouge_like_overlap([5, 6, 7], [1, 2, 3]) == 0.0

    def test_top1_agreement(self):
        a = np.asarray([[0.0, 1.0], [2.0, 0.0]])
        b = np.asarray([[0.0, 2.0], [0.0, 3.0]])
        assert top1_agreement(a, b) == 0.5
        with pytest.raises(ValueError):
            top1_agreement(a, b[:1])

    def test_kl_divergence(self):
        logits = np.random.default_rng(0).normal(size=(10, 8))
        assert mean_kl_divergence(logits, logits) == pytest.approx(0.0, abs=1e-8)
        assert mean_kl_divergence(logits, logits + np.random.default_rng(1).normal(size=(10, 8))) > 0

    def test_relative_loss(self):
        assert relative_loss_percent(50.0, 45.0) == pytest.approx(10.0)
        assert relative_loss_percent(50.0, 55.0) == pytest.approx(-10.0)
        assert relative_loss_percent(0.0, 0.0) == 0.0


class TestPerplexity:
    def test_uniform_model_bound(self, tiny_model, test_tokens):
        """PPL of an (untrained) model stays within a sane range and is finite."""
        result = compute_perplexity(tiny_model, test_tokens[:128], chunk_size=32)
        assert np.isfinite(result.perplexity)
        assert result.n_tokens == 127
        assert result.perplexity == pytest.approx(np.exp(result.cross_entropy_nats), rel=1e-6)

    def test_chunk_size_does_not_change_fp16_ppl(self, tiny_model, test_tokens):
        a = compute_perplexity(tiny_model, test_tokens[:96], chunk_size=8).perplexity
        b = compute_perplexity(tiny_model, test_tokens[:96], chunk_size=96).perplexity
        assert a == pytest.approx(b, rel=1e-4)

    def test_quantized_scheme_changes_ppl(self, tiny_model, test_tokens, million_factory):
        fp16 = compute_perplexity(tiny_model, test_tokens[:128], chunk_size=16)
        million = compute_perplexity(
            tiny_model, test_tokens[:128], cache_factory=million_factory, chunk_size=16
        )
        assert million.perplexity != fp16.perplexity
        # 4-bit PQ stays close to the fp16 reference (relative difference small).
        assert abs(million.perplexity - fp16.perplexity) / fp16.perplexity < 0.25

    def test_perplexity_by_scheme(self, tiny_model, test_tokens, million_factory):
        results = perplexity_by_scheme(
            tiny_model,
            test_tokens[:96],
            {"baseline": FullPrecisionCacheFactory(), "million-4b": million_factory},
            chunk_size=16,
        )
        assert set(results) == {"baseline", "million-4b"}

    def test_too_short_input(self, tiny_model):
        with pytest.raises(Exception):
            compute_perplexity(tiny_model, np.asarray([1]))


class TestFidelity:
    def test_million_high_fidelity(self, tiny_model, test_tokens, million_factory):
        result = logit_fidelity(
            tiny_model, test_tokens[:96], million_factory, chunk_size=16, scheme_name="million-4b"
        )
        assert result.top1_agreement > 0.3
        assert result.mean_kl >= 0.0

    def test_fp16_perfect_fidelity(self, tiny_model, test_tokens):
        result = logit_fidelity(
            tiny_model, test_tokens[:64], FullPrecisionCacheFactory(), chunk_size=16
        )
        assert result.top1_agreement == 1.0
        assert result.mean_kl == pytest.approx(0.0, abs=1e-6)
