"""Tests for the KV distribution analysis and the scheme registry."""

import numpy as np
import pytest

from repro.eval.distribution import (
    channel_statistics_from_samples,
    collect_kv_statistics,
    summarize_outlier_structure,
)
from repro.eval.schemes import available_schemes, build_cache_factory, build_scheme_factories
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.quant.cache_adapters import KiviCacheFactory, KVQuantCacheFactory
from repro.core.million_cache import MillionCacheFactory


class TestChannelStatistics:
    def test_basic_statistics(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(200, 8))
        samples[:, 3] *= 10.0
        stats = channel_statistics_from_samples(samples, layer=0, kind="key")
        assert stats.n_channels == 8
        assert stats.std[3] > 5 * np.median(stats.std)
        assert stats.magnitude_outlier_ratio() > 3.0
        assert 3 in stats.top_channels(2).tolist()

    def test_dynamic_range(self):
        samples = np.asarray([[0.0, -1.0], [2.0, 3.0]])
        stats = channel_statistics_from_samples(samples, 0, "value")
        np.testing.assert_allclose(stats.dynamic_range, [2.0, 4.0])

    def test_invalid_kind(self):
        with pytest.raises(Exception):
            channel_statistics_from_samples(np.zeros((4, 2)), 0, "query")


class TestKVDistribution:
    """The Fig. 2/3 observation must hold for our structured models."""

    @pytest.fixture(scope="class")
    def stats(self, tiny_model, test_tokens):
        return collect_kv_statistics(tiny_model, test_tokens[:192], chunk_size=96)

    def test_covers_all_layers_and_kinds(self, stats, tiny_model):
        assert len(stats) == 2 * tiny_model.config.n_layers
        assert {s.kind for s in stats} == {"key", "value"}

    def test_key_outliers_stronger_than_value_outliers(self, stats):
        summary = summarize_outlier_structure(stats)
        assert summary["key_magnitude_outlier_ratio"] > 1.5 * summary["value_magnitude_outlier_ratio"]
        assert summary["key_std_outlier_ratio"] > 1.5 * summary["value_std_outlier_ratio"]

    def test_layer_subset(self, tiny_model, test_tokens):
        stats = collect_kv_statistics(tiny_model, test_tokens[:96], layers=[1])
        assert {s.layer for s in stats} == {1}


class TestSchemeRegistry:
    def test_available_covers_paper_schemes(self):
        names = available_schemes()
        for required in ("baseline", "kivi-4b", "kvquant-3b-1pct", "million-4b"):
            assert required in names

    def test_baseline_factory(self, tiny_model):
        factory = build_cache_factory("baseline", tiny_model)
        assert isinstance(factory, FullPrecisionCacheFactory)

    def test_kivi_factory_no_calibration_needed(self, tiny_model):
        assert isinstance(build_cache_factory("kivi-4b", tiny_model), KiviCacheFactory)

    def test_calibrated_schemes_require_tokens(self, tiny_model):
        with pytest.raises(ValueError):
            build_cache_factory("million-4b", tiny_model)
        with pytest.raises(ValueError):
            build_cache_factory("kvquant-4b", tiny_model)

    def test_unknown_scheme(self, tiny_model):
        with pytest.raises(Exception):
            build_cache_factory("awq-4b", tiny_model)

    def test_build_multiple(self, tiny_model, calibration_tokens):
        factories = build_scheme_factories(
            ["baseline", "million-4b"],
            tiny_model,
            calibration_tokens[:128],
            kmeans_iters=3,
            calibration_samples=256,
        )
        assert isinstance(factories["million-4b"], MillionCacheFactory)
        # The model must still work with each factory.
        tiny_model.reset_cache(factories["million-4b"])
        logits = tiny_model.prefill(calibration_tokens[:32])
        assert np.isfinite(logits).all()
        tiny_model.reset_cache(FullPrecisionCacheFactory())
