"""Tests for the synthetic LongBench task suite."""

import numpy as np
import pytest

from repro.eval.longbench import (
    CodeCompletionTask,
    FewShotLabelTask,
    MultiHopQATask,
    PassageCountTask,
    PassageRetrievalTask,
    SingleDocQATask,
    SummarizationTask,
    average_scores,
    evaluate_task,
    longbench_tasks,
)
from repro.models.kv_cache import FullPrecisionCacheFactory


VOCAB = 128


class TestTaskGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            SingleDocQATask("narrativeqa", "qa", 256),
            MultiHopQATask("hotpotqa", "qa", 256),
            SummarizationTask("gov_report", "sum", 256),
            FewShotLabelTask("trec", "fewshot", 256),
            PassageCountTask("passage_count", "synthetic", 256),
            PassageRetrievalTask("passage_retrieval_en", "synthetic", 256),
            CodeCompletionTask("lcc", "code", 256),
        ],
        ids=lambda g: g.name,
    )
    def test_generate_produces_valid_instances(self, generator):
        rng = np.random.default_rng(0)
        instance = generator.generate(VOCAB, rng)
        assert instance.prompt_tokens.ndim == 1
        assert instance.prompt_tokens.size > 64
        assert instance.answer_tokens.size >= 1
        assert instance.prompt_tokens.max() < VOCAB
        assert instance.answer_tokens.max() < VOCAB
        # A perfect prediction must score 100, an unrelated one must score less.
        perfect = generator.score(instance.answer_tokens.tolist(), instance)
        assert perfect == pytest.approx(100.0)
        wrong = generator.score([VOCAB - 1] * instance.answer_tokens.size, instance)
        assert wrong < perfect

    def test_singledoc_answer_is_in_context(self):
        generator = SingleDocQATask("qasper", "qa", 256)
        instance = generator.generate(VOCAB, np.random.default_rng(1))
        prompt = instance.prompt_tokens.tolist()
        answer = instance.answer_tokens.tolist()
        joined = ",".join(map(str, prompt))
        assert ",".join(map(str, answer)) in joined

    def test_passage_count_answer_matches_metadata(self):
        generator = PassageCountTask("passage_count", "synthetic", 256)
        instance = generator.generate(VOCAB, np.random.default_rng(2))
        n_unique = instance.metadata["n_unique"]
        assert instance.answer_tokens[0] == generator.specials.content_start + n_unique

    def test_retrieval_target_id_is_first_token_of_target_passage(self):
        generator = PassageRetrievalTask("passage_retrieval_en", "synthetic", 256)
        instance = generator.generate(VOCAB, np.random.default_rng(3))
        target = instance.metadata["target_passage"]
        assert instance.answer_tokens[0] == generator.specials.content_start + target

    def test_deterministic_given_rng_seed(self):
        generator = SingleDocQATask("narrativeqa", "qa", 256)
        a = generator.generate(VOCAB, np.random.default_rng(5))
        b = generator.generate(VOCAB, np.random.default_rng(5))
        np.testing.assert_array_equal(a.prompt_tokens, b.prompt_tokens)


class TestSuiteDefinition:
    def test_sixteen_tasks(self):
        tasks = longbench_tasks()
        assert len(tasks) == 16
        for name in ("qasper", "hotpotqa", "gov_report", "trec", "passage_count", "lcc"):
            assert name in tasks

    def test_categories_cover_longbench_families(self):
        categories = {t.category for t in longbench_tasks().values()}
        assert len(categories) >= 5


class TestEvaluation:
    def test_evaluate_task_runs(self, tiny_model):
        generator = SingleDocQATask("qasper", "qa", 128)
        result = evaluate_task(
            tiny_model,
            generator,
            FullPrecisionCacheFactory(),
            n_examples=2,
            scheme_name="baseline",
        )
        assert result.task == "qasper"
        assert 0.0 <= result.score <= 100.0
        assert len(result.scores) == 2

    def test_same_seed_same_examples(self, tiny_model):
        generator = PassageRetrievalTask("passage_retrieval_en", "synthetic", 128)
        a = evaluate_task(tiny_model, generator, None, n_examples=1, seed=3)
        b = evaluate_task(tiny_model, generator, None, n_examples=1, seed=3)
        assert a.score == b.score

    def test_average_scores(self):
        from repro.eval.longbench import TaskResult

        results = [
            TaskResult("a", "qa", "baseline", 50.0, 1),
            TaskResult("b", "qa", "baseline", 100.0, 1),
            TaskResult("a", "qa", "million", 40.0, 1),
        ]
        averages = average_scores(results)
        assert averages["baseline"] == pytest.approx(75.0)
        assert averages["million"] == pytest.approx(40.0)

    def test_prompt_truncated_to_model_limit(self, tiny_model):
        generator = SingleDocQATask("narrativeqa", "qa", 2048)
        result = evaluate_task(tiny_model, generator, None, n_examples=1)
        assert 0.0 <= result.score <= 100.0
