"""Prometheus text-exposition parser/validator behavior."""

import math

import pytest

from repro.obs.promtext import ExpositionError, parse_exposition

VALID = """\
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{path="/v1/completions",status="200"} 3
app_requests_total{path="/metrics",status="200"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{tier="default",le="0.1"} 2
app_latency_seconds_bucket{tier="default",le="1.0"} 3
app_latency_seconds_bucket{tier="default",le="+Inf"} 4
app_latency_seconds_sum{tier="default"} 5.25
app_latency_seconds_count{tier="default"} 4
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 21.5
"""


class TestParsing:
    def test_valid_scrape_parses(self):
        families = parse_exposition(VALID)
        assert set(families) == {
            "app_requests_total", "app_latency_seconds", "app_temperature"
        }
        counter = families["app_requests_total"]
        assert counter.type == "counter"
        assert counter.value(path="/v1/completions", status="200") == 3.0
        hist = families["app_latency_seconds"]
        assert hist.type == "histogram"
        assert hist.value(tier="default", le="+Inf") == 4.0
        assert families["app_temperature"].value() == 21.5

    def test_label_escaping_round_trip(self):
        tricky = 'a"b\\c\nd'
        text = (
            "# HELP m help\n# TYPE m gauge\n"
            'm{k="a\\"b\\\\c\\nd"} 1\n'
        )
        families = parse_exposition(text)
        assert families["m"].samples[0].labels == {"k": tricky}

    def test_non_finite_canonical_spellings_accepted(self):
        text = (
            "# HELP m help\n# TYPE m gauge\n"
            'm{k="a"} +Inf\nm{k="b"} -Inf\nm{k="c"} NaN\n'
        )
        families = parse_exposition(text)
        assert families["m"].value(k="a") == math.inf
        assert families["m"].value(k="b") == -math.inf
        assert math.isnan(families["m"].value(k="c"))


class TestValidation:
    def _errors(self, text):
        with pytest.raises(ExpositionError) as excinfo:
            parse_exposition(text)
        return "\n".join(excinfo.value.errors)

    def test_python_float_inf_rejected(self):
        # repr(float("inf")) — the renderer bug this parser exists to catch.
        errors = self._errors("# HELP m help\n# TYPE m gauge\nm inf\n")
        assert "must be rendered as" in errors

    def test_missing_type_header(self):
        assert "missing TYPE" in self._errors("# HELP m help\nm 1\n")

    def test_missing_help_header(self):
        assert "missing HELP" in self._errors("# TYPE m gauge\nm 1\n")

    def test_duplicate_sample(self):
        text = "# HELP m help\n# TYPE m gauge\nm 1\nm 2\n"
        assert "duplicate sample" in self._errors(text)

    def test_negative_counter(self):
        text = "# HELP m help\n# TYPE m counter\nm -1\n"
        assert "negative or NaN" in self._errors(text)

    def test_histogram_non_monotonic_buckets(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        assert "cumulative and monotonic" in self._errors(text)

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n'
        )
        assert "missing '+Inf'" in self._errors(text)

    def test_histogram_count_bucket_mismatch(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 2\n'
        )
        assert "_count" in self._errors(text)

    def test_histogram_missing_sum(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\nh_count 1\n'
        )
        assert "missing _sum" in self._errors(text)

    def test_histogram_series_validated_per_label_set(self):
        # One tier healthy, the other broken: the error names the broken one.
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{tier="good",le="+Inf"} 1\n'
            'h_sum{tier="good"} 0.5\nh_count{tier="good"} 1\n'
            'h_bucket{tier="bad",le="+Inf"} 1\n'
            'h_sum{tier="bad"} 0.5\nh_count{tier="bad"} 9\n'
        )
        errors = self._errors(text)
        assert "bad" in errors and "good" not in errors

    def test_timestamps_rejected(self):
        text = "# HELP m help\n# TYPE m gauge\nm 1 1700000000\n"
        assert "trailing fields" in self._errors(text)
