"""HealthEngine unit tests: burn rates, windowing, rules, alert transitions."""

from __future__ import annotations

import pytest

from repro.obs.health import (
    HEALTH_STATES,
    HealthEngine,
    HealthPolicy,
    HealthSample,
    state_value,
)
from repro.obs.hist import Histogram
from repro.obs.trace import TraceRecorder


def ttft_snapshot(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist.snapshot()


def sample(ts, ttft_values=(), http_total=0, http_errors=0, replicas=()):
    return HealthSample(
        ts=ts,
        ttft={"interactive": ttft_snapshot(ttft_values)} if ttft_values else {},
        http_total=http_total,
        http_errors=http_errors,
        replicas=replicas,
    )


INTERACTIVE_SLO = HealthPolicy(
    window_s=60.0, objective=0.95, ttft_slo_s={"interactive": 0.5}
)


class TestBurnRate:
    def test_single_sample_is_ok(self):
        engine = HealthEngine(INTERACTIVE_SLO)
        report = engine.observe(sample(0.0, ttft_values=[10.0] * 5))
        # No window yet — cumulative state alone must not fire a burn rule.
        assert report["status"] == "ok"
        assert engine.burn_rates == {"interactive": 0.0}

    def test_burn_over_window_delta_flags_degraded(self):
        engine = HealthEngine(INTERACTIVE_SLO)
        engine.observe(sample(0.0, ttft_values=[0.01] * 10))
        # 10 new requests, 2 of them over the 500ms SLO: burn = 0.2/0.05 = 4.
        late = [0.01] * 18 + [10.0, 10.0]
        report = engine.observe(sample(10.0, ttft_values=late))
        assert report["status"] == "degraded"
        assert engine.burn_rates["interactive"] == pytest.approx(4.0)
        [check] = [c for c in report["checks"] if c["rule"] == "slo_burn"]
        assert "interactive" in check["reason"]
        assert "4.00x" in check["reason"]
        assert check["scope"] == "gateway"

    def test_extreme_burn_is_unhealthy(self):
        engine = HealthEngine(INTERACTIVE_SLO)
        engine.observe(sample(0.0, ttft_values=[0.01]))
        # Every new request breaches: burn = 1.0 / 0.05 = 20 >= 6.
        report = engine.observe(sample(10.0, ttft_values=[0.01] + [10.0] * 9))
        assert report["status"] == "unhealthy"

    def test_recovery_when_breaches_age_out_of_window(self):
        engine = HealthEngine(INTERACTIVE_SLO)
        good = [0.01] * 10
        engine.observe(sample(0.0, ttft_values=good))
        # 10 new requests, 1 breach: burn = 0.1/0.05 = 2 -> degraded.
        assert engine.observe(
            sample(10.0, ttft_values=good + [0.01] * 9 + [10.0])
        )["status"] == "degraded"
        # 100s later the breach left the 60s window; the in-window delta
        # contains only fast requests, so the verdict recovers.
        report = engine.observe(
            sample(110.0, ttft_values=good + [0.01] * 9 + [10.0] + [0.01] * 80)
        )
        assert report["status"] == "ok"
        assert engine.burn_rates["interactive"] == 0.0

    def test_min_samples_suppresses_noisy_verdicts(self):
        policy = HealthPolicy(ttft_slo_s={"interactive": 0.5}, min_samples=5)
        engine = HealthEngine(policy)
        engine.observe(sample(0.0, ttft_values=[0.01]))
        # Only 2 in-window observations: below min_samples, no verdict.
        report = engine.observe(
            sample(1.0, ttft_values=[0.01, 10.0, 10.0])
        )
        assert report["status"] == "ok"


class TestOtherRules:
    def test_error_rate_rule(self):
        engine = HealthEngine(HealthPolicy())
        engine.observe(sample(0.0, http_total=100, http_errors=0))
        report = engine.observe(sample(1.0, http_total=120, http_errors=5))
        [check] = report["checks"]
        assert check["rule"] == "error_rate"
        assert check["state"] == "degraded"
        assert check["value"] == pytest.approx(0.25)

    def test_replica_failed_is_unhealthy_and_scoped(self):
        engine = HealthEngine(HealthPolicy())
        report = engine.observe(
            sample(
                0.0,
                replicas=[
                    {"failed": False},
                    {"failed": True, "error": "stepper died"},
                ],
            )
        )
        assert report["status"] == "unhealthy"
        assert [r["state"] for r in report["replicas"]] == ["ok", "unhealthy"]
        assert "stepper died" in report["replicas"][1]["reasons"][0]
        assert engine.replica_states == ["ok", "unhealthy"]

    def test_pool_pressure_rule_degrades_the_replica(self):
        engine = HealthEngine(HealthPolicy(max_pool_pressure=0.9))
        report = engine.observe(
            sample(0.0, replicas=[{"pool_pressure": 0.99}])
        )
        assert report["status"] == "degraded"
        [check] = report["checks"]
        assert check["rule"] == "pool_pressure"
        assert check["scope"] == "replica-0"

    def test_queue_depth_rule_disabled_by_default(self):
        engine = HealthEngine(HealthPolicy())
        report = engine.observe(sample(0.0, replicas=[{"queued": 10_000}]))
        assert report["status"] == "ok"
        limited = HealthEngine(HealthPolicy(max_queued=8))
        report = limited.observe(sample(0.0, replicas=[{"queued": 9}]))
        assert report["status"] == "degraded"
        assert report["checks"][0]["rule"] == "queue_depth"


class TestWindowing:
    def test_old_samples_evicted_but_one_always_kept(self):
        engine = HealthEngine(HealthPolicy(window_s=10.0))
        for ts in (0.0, 5.0, 30.0):
            report = engine.observe(sample(ts))
        # 0.0 and 5.0 are out of the 30-10 window; 30.0 remains alone.
        assert report["samples"] == 1
        assert report["window_s"] == 0.0


class TestAlerts:
    def test_transitions_emit_trace_instants_once(self):
        trace = TraceRecorder(capacity=256)
        engine = HealthEngine(INTERACTIVE_SLO, trace=trace)
        engine.observe(sample(0.0, ttft_values=[0.01]))
        engine.observe(sample(1.0, ttft_values=[0.01] + [10.0] * 9))
        alerts = [e for e in trace.snapshot() if e.name == "health_alert"]
        # overall + the slo_burn rule transitioned; steady state after.
        assert {a.args["key"] for a in alerts} == {
            "overall", "slo_burn@gateway"
        }
        before = len(alerts)
        engine.observe(sample(2.0, ttft_values=[0.01] + [10.0] * 19))
        alerts = [e for e in trace.snapshot() if e.name == "health_alert"]
        assert len(alerts) == before  # still burning: no re-alert

    def test_recovery_alerts_fire(self):
        trace = TraceRecorder(capacity=256)
        engine = HealthEngine(INTERACTIVE_SLO, trace=trace)
        engine.observe(sample(0.0, ttft_values=[10.0] * 10))
        engine.observe(sample(1.0, ttft_values=[10.0] * 10 + [10.0] * 10))
        engine.observe(
            sample(120.0, ttft_values=[10.0] * 20 + [0.01] * 50)
        )
        recoveries = [
            e for e in trace.snapshot()
            if e.name == "health_alert" and e.args["to"] == "ok"
        ]
        assert recoveries, "recovery transitions must alert too"


class TestStateValue:
    def test_states_map_to_gauge_values(self):
        assert [state_value(s) for s in HEALTH_STATES] == [0, 1, 2]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(objective=1.0)
        with pytest.raises(ValueError):
            HealthPolicy(degraded_burn=5.0, unhealthy_burn=1.0)
        with pytest.raises(ValueError):
            HealthPolicy(ttft_slo_s={"interactive": -1.0})
