"""Histogram: bucket semantics, quantiles, thread safety, merging."""

import threading

import pytest

from repro.obs.hist import (
    BATCH_BUCKETS,
    Histogram,
    LATENCY_BUCKETS_S,
    delta_snapshots,
    merge_snapshots,
    snapshot_fraction_over,
    snapshot_quantile,
)
from repro.utils.validation import ValidationError


class TestObserve:
    def test_le_semantics_value_on_bound_lands_in_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)  # Prometheus: v <= le
        h.observe(1.5)
        h.observe(2.5)  # beyond the last bound -> +Inf
        snap = h.snapshot()
        assert snap["counts"] == [1, 1]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.0)

    def test_snapshot_counts_are_non_cumulative(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.snapshot()["counts"] == [1, 2, 1]

    def test_bounds_must_increase(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=(1.0, 1.0))

    def test_bounds_must_be_finite(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=(1.0, float("inf")))

    def test_default_buckets_cover_latency_range(self):
        assert LATENCY_BUCKETS_S[0] <= 0.001
        assert LATENCY_BUCKETS_S[-1] >= 10.0
        assert BATCH_BUCKETS[0] == 1.0


class TestQuantile:
    def test_empty_returns_none(self):
        assert Histogram().quantile(0.5) is None

    def test_interpolates_within_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)  # all in the (1.0, 2.0] bucket
        # p50 = halfway through the bucket's mass: lo + 0.5 * (hi - lo)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_inf_observations_clamp_to_largest_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_p50_p99_ordering(self):
        h = Histogram()
        for i in range(100):
            h.observe(0.001 * (i + 1))  # 1ms .. 100ms
        p50, p99 = h.quantile(0.5), h.quantile(0.99)
        assert p50 is not None and p99 is not None
        assert p50 < p99
        assert 0.025 <= p50 <= 0.1
        assert p99 <= 0.25

    def test_quantile_range_validated(self):
        with pytest.raises(ValidationError):
            Histogram().quantile(1.5)


class TestThreadSafety:
    def test_concurrent_observes_lose_nothing(self):
        h = Histogram()
        per_thread = 2000

        def observe():
            for _ in range(per_thread):
                h.observe(0.01)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4 * per_thread
        assert h.sum == pytest.approx(4 * per_thread * 0.01)


class TestMerge:
    def test_merge_sums_replicas(self):
        a, b = Histogram(buckets=(1.0, 2.0)), Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counts"] == [1, 1]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(11.0)

    def test_merge_rejects_mismatched_bounds(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(2.0,))
        with pytest.raises(ValidationError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestSnapshotEdges:
    """Edge cases for the detached-snapshot helpers the health engine and
    dashboard lean on: empty windows, exact quantile bounds, deltas."""

    def test_quantile_empty_histogram_is_none(self):
        h = Histogram(buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None
        assert snapshot_quantile(h.snapshot(), 0.99) is None

    def test_quantile_boundaries_q0_and_q1(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        # q=0 sits at the lower edge of the first occupied bucket; q=1 at
        # the upper bound of the last occupied one.
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_rejects_out_of_range(self):
        snap = Histogram(buckets=(1.0,)).snapshot()
        with pytest.raises(ValidationError):
            snapshot_quantile(snap, -0.01)
        with pytest.raises(ValidationError):
            snapshot_quantile(snap, 1.01)

    def test_inf_observations_clamp_to_largest_finite_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_fraction_over_empty_is_none(self):
        assert snapshot_fraction_over(Histogram().snapshot(), 0.5) is None

    def test_fraction_over_interpolates_and_counts_inf(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)   # fully under any threshold >= 1.0
        h.observe(1.5)   # spread uniformly over (1.0, 2.0]
        h.observe(99.0)  # +Inf bucket: entirely over
        frac = snapshot_fraction_over(h.snapshot(), 1.5)
        # 0 + 0.5 (half of the middle bucket) + 1 out of 3 observations.
        assert frac == pytest.approx(1.5 / 3)
        assert snapshot_fraction_over(h.snapshot(), 0.0) == pytest.approx(1.0)

    def test_delta_subtracts_window(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        old = h.snapshot()
        h.observe(1.5)
        h.observe(9.0)
        delta = delta_snapshots(h.snapshot(), old)
        assert delta["counts"] == [0, 1]
        assert delta["count"] == 2
        assert delta["sum"] == pytest.approx(10.5)

    def test_delta_rejects_mismatched_bounds(self):
        a = Histogram(buckets=(1.0,)).snapshot()
        b = Histogram(buckets=(2.0,)).snapshot()
        with pytest.raises(ValidationError):
            delta_snapshots(a, b)

    def test_delta_rejects_backwards_counts(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        grown = h.snapshot()
        fresh = Histogram(buckets=(1.0,)).snapshot()
        with pytest.raises(ValidationError):
            delta_snapshots(fresh, grown)

    def test_merge_rejects_empty_sequence(self):
        with pytest.raises(ValidationError):
            merge_snapshots([])
