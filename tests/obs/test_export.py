"""Chrome trace-event export: schema shape, tracks, flow correlation."""

import json

import pytest

from repro.obs.export import chrome_trace_events, to_chrome_trace
from repro.obs.trace import TraceRecorder

# The trace-event fields Perfetto requires per phase (the schema the ISSUE's
# acceptance test validates exported traces against).
_REQUIRED_BY_PHASE = {
    "X": {"name", "ph", "ts", "dur", "pid", "tid"},
    "i": {"name", "ph", "ts", "pid", "tid", "s"},
    "M": {"name", "ph", "pid", "tid", "args"},
    "s": {"name", "ph", "id", "ts", "pid", "tid"},
    "t": {"name", "ph", "id", "ts", "pid", "tid"},
    "f": {"name", "ph", "id", "ts", "pid", "tid"},
}


def assert_valid_trace_events(events):
    """Every event carries the fields its phase requires, with sane types."""
    assert isinstance(events, list)
    for event in events:
        phase = event["ph"]
        assert phase in _REQUIRED_BY_PHASE, f"unknown phase {phase!r}"
        missing = _REQUIRED_BY_PHASE[phase] - set(event)
        assert not missing, f"{phase!r} event missing {missing}: {event}"
        if "ts" in event:
            assert isinstance(event["ts"], (int, float))
        if phase == "X":
            assert event["dur"] >= 0
        if phase == "f":
            assert event.get("bp") == "e"


def _populated_recorder():
    rec = TraceRecorder()
    base = 100.0
    rec.epoch = base
    for req in ("req-0000", "req-0001"):
        offset = 0.0 if req == "req-0000" else 0.5
        rec.complete(
            "request", base + offset, base + offset + 0.4,
            track="gateway", request_id=req,
        )
        rec.complete(
            "queue_wait", base + offset, base + offset + 0.01,
            track="replica-0", request_id=req,
        )
        rec.complete(
            "prefill", base + offset + 0.01, base + offset + 0.05,
            track="replica-0", request_id=req,
        )
        rec.instant(
            "first_token", track="gateway", request_id=req,
            ts=base + offset + 0.06,
        )
    rec.complete("decode_step", base + 0.06, base + 0.08, track="replica-0",
                 args={"batch": 2})
    return rec


class TestChromeTraceEvents:
    def test_schema_valid_and_json_serializable(self):
        exported = to_chrome_trace(_populated_recorder())
        assert json.loads(json.dumps(exported)) == exported
        assert_valid_trace_events(exported["traceEvents"])
        assert exported["displayTimeUnit"] == "ms"
        assert exported["otherData"]["truncated"] is False

    def test_each_track_becomes_a_named_thread(self):
        events = to_chrome_trace(_populated_recorder())["traceEvents"]
        names = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(names) == {"gateway", "replica-0"}
        assert len(set(names.values())) == 2  # distinct tids

    def test_timestamps_relative_to_epoch_in_microseconds(self):
        events = to_chrome_trace(_populated_recorder())["traceEvents"]
        spans = [e for e in events if e["ph"] == "X" and e["name"] == "request"]
        assert min(s["ts"] for s in spans) == 0.0
        assert max(s["ts"] for s in spans) == pytest.approx(500_000.0)  # 0.5 s
        assert spans[0]["dur"] == pytest.approx(400_000.0)

    def test_request_flow_chains_cross_track_spans(self):
        events = to_chrome_trace(_populated_recorder())["traceEvents"]
        for req in ("req-0000", "req-0001"):
            flow = [e for e in events if e["name"] == f"request:{req}"]
            # 3 spans per request: start, one step, finish.
            assert [e["ph"] for e in flow] == ["s", "t", "f"]
            ids = {e["id"] for e in flow}
            assert len(ids) == 1
            # The chain crosses from the gateway track to the replica track.
            assert len({e["tid"] for e in flow}) == 2
        flow_ids = {
            e["id"] for e in events if e["ph"] in ("s", "t", "f")
        }
        assert len(flow_ids) == 2  # one flow id per request

    def test_single_span_requests_get_no_flow(self):
        rec = TraceRecorder()
        rec.complete("request", 0.0, 1.0, request_id="lonely")
        events = chrome_trace_events(rec.snapshot())
        assert not [e for e in events if e["ph"] in ("s", "t", "f")]

    def test_request_id_lands_in_args(self):
        events = to_chrome_trace(_populated_recorder())["traceEvents"]
        span = next(e for e in events if e["ph"] == "X" and e["name"] == "request")
        assert span["args"]["request_id"] == "req-0000"
