"""PhaseProfiler unit tests: accumulation, self times, flamegraph exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    merge_phase_snapshots,
    phase_table,
    to_collapsed,
    to_speedscope,
    validate_prof_payload,
)


class TestPhaseProfiler:
    def test_record_accumulates_count_and_seconds(self):
        prof = PhaseProfiler()
        prof.record("decode", 0.5)
        prof.record("decode", 0.25)
        prof.record("decode/lut_build", 0.1, count=3)
        snap = prof.snapshot()
        assert snap["decode"] == {"count": 2, "total_s": 0.75}
        assert snap["decode/lut_build"] == {"count": 3, "total_s": 0.1}
        assert len(prof) == 2

    def test_lap_records_elapsed_and_returns_now(self):
        prof = PhaseProfiler()
        t0 = prof.now()
        t1 = prof.lap("decode/gather", t0)
        assert t1 >= t0
        snap = prof.snapshot()
        assert snap["decode/gather"]["count"] == 1
        assert snap["decode/gather"]["total_s"] >= 0.0

    def test_reset_clears_phases(self):
        prof = PhaseProfiler()
        prof.record("prefill", 1.0)
        prof.reset()
        assert prof.snapshot() == {}

    def test_snapshot_is_detached_copy(self):
        prof = PhaseProfiler()
        prof.record("decode", 1.0)
        snap = prof.snapshot()
        snap["decode"]["total_s"] = 999.0
        assert prof.snapshot()["decode"]["total_s"] == 1.0

    def test_thread_safety_no_lost_updates(self):
        prof = PhaseProfiler()

        def worker():
            for _ in range(1000):
                prof.record("decode", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.snapshot()["decode"]["count"] == 4000

    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        t0 = 123.456
        assert NULL_PROFILER.lap("decode", t0) == t0  # unrecorded, start echoed
        NULL_PROFILER.record("decode", 1.0)
        assert NULL_PROFILER.snapshot() == {}


class TestPhaseTable:
    def test_self_time_subtracts_direct_children_only(self):
        snap = {
            "decode": {"count": 10, "total_s": 1.0},
            "decode/gather": {"count": 10, "total_s": 0.6},
            "decode/gather/inner": {"count": 10, "total_s": 0.5},
            "decode/merge": {"count": 10, "total_s": 0.3},
        }
        rows = {row["phase"]: row for row in phase_table(snap)}
        # decode self = 1.0 - (0.6 + 0.3); grandchild does not double-count.
        assert rows["decode"]["self_s"] == pytest.approx(0.1)
        assert rows["decode/gather"]["self_s"] == pytest.approx(0.1)
        assert rows["decode/gather/inner"]["self_s"] == pytest.approx(0.5)
        assert rows["decode/merge"]["self_s"] == pytest.approx(0.3)
        # Self times under the root sum to the root's recorded total.
        assert sum(r["self_s"] for r in rows.values()) == pytest.approx(1.0)

    def test_rows_sorted_by_self_time_desc(self):
        snap = {
            "a": {"count": 1, "total_s": 0.1},
            "b": {"count": 1, "total_s": 0.9},
        }
        assert [row["phase"] for row in phase_table(snap)] == ["b", "a"]

    def test_child_overrun_clamps_self_to_zero(self):
        # Clock jitter can make children sum past the parent on tiny spans.
        snap = {
            "decode": {"count": 1, "total_s": 0.1},
            "decode/gather": {"count": 1, "total_s": 0.2},
        }
        rows = {row["phase"]: row for row in phase_table(snap)}
        assert rows["decode"]["self_s"] == 0.0


class TestMerge:
    def test_merge_sums_across_replicas(self):
        merged = merge_phase_snapshots(
            [
                {"decode": {"count": 1, "total_s": 0.5}},
                {
                    "decode": {"count": 2, "total_s": 0.25},
                    "prefill": {"count": 1, "total_s": 1.0},
                },
            ]
        )
        assert merged["decode"] == {"count": 3, "total_s": 0.75}
        assert merged["prefill"] == {"count": 1, "total_s": 1.0}

    def test_merge_empty_sequence(self):
        assert merge_phase_snapshots([]) == {}


class TestExports:
    SNAP = {
        "decode": {"count": 4, "total_s": 1.0},
        "decode/gather": {"count": 4, "total_s": 0.4},
        "decode/merge": {"count": 4, "total_s": 0.2},
        "prefill": {"count": 1, "total_s": 0.5},
    }

    def test_collapsed_stacks_self_time_weighted(self):
        lines = to_collapsed(self.SNAP)
        as_dict = dict(line.rsplit(" ", 1) for line in lines)
        assert as_dict["decode;gather"] == str(round(0.4 * 1e6))
        # decode's own line carries self time (total minus children).
        assert as_dict["decode"] == str(round(0.4 * 1e6))
        assert as_dict["prefill"] == str(round(0.5 * 1e6))

    def test_speedscope_document_shape_and_nesting(self):
        doc = to_speedscope(self.SNAP)
        assert doc["$schema"].endswith("file-format-schema.json")
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        # Events are balanced, ordered, and reference declared frames;
        # validate_prof_payload performs the full check.
        validate_prof_payload(
            {
                "enabled": True,
                "phases": phase_table(self.SNAP),
                "collapsed": to_collapsed(self.SNAP),
                "speedscope": doc,
            }
        )
        # Total laid-out width = sum of root totals.
        assert profile["endValue"] == pytest.approx(1.5)
        assert json.dumps(doc)  # JSON-serializable end to end

    def test_speedscope_clamps_overrunning_children(self):
        snap = {
            "decode": {"count": 1, "total_s": 0.1},
            "decode/gather": {"count": 1, "total_s": 0.2},
        }
        doc = to_speedscope(snap)
        validate_prof_payload(
            {
                "enabled": True,
                "phases": phase_table(snap),
                "collapsed": to_collapsed(snap),
                "speedscope": doc,
            }
        )

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError, match="missing top-level key"):
            validate_prof_payload({"enabled": True})
        doc = to_speedscope(self.SNAP)
        doc["profiles"][0]["events"].append({"type": "C", "frame": 0, "at": 99.0})
        with pytest.raises(ValueError, match="speedscope"):
            validate_prof_payload(
                {
                    "enabled": True,
                    "phases": [],
                    "collapsed": [],
                    "speedscope": doc,
                }
            )
