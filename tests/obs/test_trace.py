"""TraceRecorder: spans, ring-buffer truncation, thread safety, filtering."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    TraceRecorder,
)
from repro.utils.validation import ValidationError


class TestRecording:
    def test_complete_records_duration(self):
        rec = TraceRecorder()
        rec.complete("work", 1.0, 1.5, track="t", request_id="r1")
        (event,) = rec.snapshot()
        assert event.name == "work"
        assert event.phase == PHASE_COMPLETE
        assert event.ts == 1.0
        assert event.dur == pytest.approx(0.5)
        assert event.track == "t"
        assert event.request_id == "r1"

    def test_negative_duration_clamps_to_zero(self):
        rec = TraceRecorder()
        rec.complete("backwards", 2.0, 1.0)
        assert rec.snapshot()[0].dur == 0.0

    def test_instant_defaults_to_now(self):
        rec = TraceRecorder()
        before = rec.now()
        rec.instant("mark")
        (event,) = rec.snapshot()
        assert event.phase == PHASE_INSTANT
        assert event.dur == 0.0
        assert before <= event.ts <= rec.now()

    def test_span_context_manager_records_on_exception(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("failing", request_id="r1"):
                raise RuntimeError("boom")
        (event,) = rec.snapshot()
        assert event.name == "failing"
        assert event.request_id == "r1"

    def test_span_nesting_orders_inner_before_outer(self):
        # The inner span *closes* first, so it lands in the buffer first;
        # its [ts, ts+dur] window nests inside the outer span's window.
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = rec.snapshot()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            TraceRecorder(capacity=0)


class TestRingBuffer:
    def test_truncation_drops_oldest_and_counts(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.instant(f"e{i}")
        assert len(rec) == 3
        assert rec.events_total == 5
        assert rec.dropped == 2
        assert [e.name for e in rec.snapshot()] == ["e2", "e3", "e4"]

    def test_export_flags_truncation(self):
        rec = TraceRecorder(capacity=2)
        for i in range(4):
            rec.instant(f"e{i}")
        exported = rec.to_chrome_trace()
        assert exported["otherData"]["truncated"] is True
        assert exported["otherData"]["dropped_events"] == 2

    def test_clear_keeps_totals(self):
        rec = TraceRecorder()
        rec.instant("a")
        rec.clear()
        assert len(rec) == 0
        assert rec.events_total == 1


class TestSnapshotFilters:
    def test_since_keeps_spans_still_in_window(self):
        rec = TraceRecorder()
        rec.complete("old", 0.0, 1.0)
        rec.complete("overlapping", 4.0, 6.0)
        rec.instant("recent", ts=7.0)
        names = [e.name for e in rec.snapshot(since=5.0)]
        assert names == ["overlapping", "recent"]

    def test_request_id_filter(self):
        rec = TraceRecorder()
        rec.instant("a", request_id="r1")
        rec.instant("b", request_id="r2")
        rec.instant("c")
        assert [e.name for e in rec.snapshot(request_id="r1")] == ["a"]


class TestThreadSafety:
    def test_concurrent_appends_lose_nothing(self):
        rec = TraceRecorder(capacity=10_000)
        per_thread = 500

        def record(tid):
            for i in range(per_thread):
                rec.instant(f"t{tid}-{i}", track=f"thread-{tid}")

        threads = [threading.Thread(target=record, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.events_total == 4 * per_thread
        assert len(rec) == 4 * per_thread


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.instant("a")
        rec.complete("b", 0.0, 1.0)
        with rec.span("c"):
            pass
        assert len(rec) == 0
        assert rec.events_total == 0

    def test_null_export_is_valid_json(self):
        exported = NULL_RECORDER.to_chrome_trace()
        assert json.loads(json.dumps(exported)) == exported
        assert exported["traceEvents"] == []
        assert exported["otherData"]["enabled"] is False
