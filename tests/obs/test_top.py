"""`repro-obs top` rendering tests — pure, no server or terminal needed."""

from __future__ import annotations

import pytest

from repro.obs.promtext import parse_exposition
from repro.obs.top import (
    TopSample,
    family_value,
    histogram_snapshot,
    render_frame,
    sum_family,
)

SCRAPE = """\
# HELP repro_gateway_tokens_streamed_total Completion tokens sent.
# TYPE repro_gateway_tokens_streamed_total counter
repro_gateway_tokens_streamed_total 100
# HELP repro_gateway_requests_in_flight Requests being served.
# TYPE repro_gateway_requests_in_flight gauge
repro_gateway_requests_in_flight 2
# HELP repro_gateway_priority_ttft_seconds TTFT by priority class.
# TYPE repro_gateway_priority_ttft_seconds histogram
repro_gateway_priority_ttft_seconds_bucket{priority="interactive",le="0.1"} 8
repro_gateway_priority_ttft_seconds_bucket{priority="interactive",le="1.0"} 10
repro_gateway_priority_ttft_seconds_bucket{priority="interactive",le="+Inf"} 10
repro_gateway_priority_ttft_seconds_sum{priority="interactive"} 1.5
repro_gateway_priority_ttft_seconds_count{priority="interactive"} 10
# HELP repro_engine_running Sequences currently decoding.
# TYPE repro_engine_running gauge
repro_engine_running{replica="0"} 3
repro_engine_running{replica="1"} 1
# HELP repro_engine_queued Requests waiting for admission.
# TYPE repro_engine_queued gauge
repro_engine_queued{replica="0"} 5
repro_engine_queued{replica="1"} 0
# HELP repro_engine_fused_decode_steps_total Fused decode steps.
# TYPE repro_engine_fused_decode_steps_total counter
repro_engine_fused_decode_steps_total{replica="0"} 40
repro_engine_fused_decode_steps_total{replica="1"} 20
# HELP repro_pool_utilization Fraction of pool blocks holding content.
# TYPE repro_pool_utilization gauge
repro_pool_utilization{replica="0"} 0.5
repro_pool_utilization{replica="1"} 0.25
# HELP repro_pool_pressure Pool pressure.
# TYPE repro_pool_pressure gauge
repro_pool_pressure{replica="0"} 0.9
repro_pool_pressure{replica="1"} 0.0
# HELP repro_engine_phase_seconds Wall seconds per engine phase.
# TYPE repro_engine_phase_seconds counter
repro_engine_phase_seconds{replica="0",phase="decode"} 2.0
repro_engine_phase_seconds{replica="0",phase="decode/adc_gather"} 0.8
repro_engine_phase_seconds{replica="1",phase="decode"} 1.0
"""

HEALTH = {
    "status": "degraded",
    "model": "test-model",
    "burn_rates": {"interactive": 2.0},
    "checks": [
        {
            "rule": "slo_burn",
            "state": "degraded",
            "scope": "gateway",
            "reason": "slo_burn:interactive burning 2.00x the error budget",
        }
    ],
    "replica_health": [
        {"replica": 0, "state": "degraded", "reasons": ["pool pressure"]},
        {"replica": 1, "state": "ok", "reasons": []},
    ],
}


@pytest.fixture()
def current():
    return TopSample(
        ts=10.0, families=parse_exposition(SCRAPE), health=dict(HEALTH)
    )


class TestReadingFamilies:
    def test_family_value_with_and_without_labels(self, current):
        fam = current.families
        assert family_value(fam, "repro_gateway_tokens_streamed_total") == 100
        assert family_value(fam, "repro_engine_running", replica="1") == 1
        assert family_value(fam, "no_such_family", default=7.0) == 7.0
        assert family_value(fam, "repro_engine_running", replica="9") == 0.0

    def test_sum_family_superset_match(self, current):
        assert sum_family(current.families, "repro_engine_running") == 4
        assert (
            sum_family(
                current.families, "repro_engine_phase_seconds", phase="decode"
            )
            == 3.0
        )

    def test_histogram_snapshot_inverts_the_renderer(self, current):
        snap = histogram_snapshot(
            current.families,
            "repro_gateway_priority_ttft_seconds",
            priority="interactive",
        )
        assert snap == {
            "buckets": [0.1, 1.0],
            "counts": [8, 2],
            "sum": 1.5,
            "count": 10,
        }

    def test_histogram_snapshot_absent_series_is_none(self, current):
        assert (
            histogram_snapshot(
                current.families,
                "repro_gateway_priority_ttft_seconds",
                priority="best_effort",
            )
            is None
        )


class TestRenderFrame:
    def test_first_frame_shows_lifetime_values(self, current):
        frame = render_frame(current, previous=None, color=False)
        assert "repro-obs top — test-model" in frame
        assert "health=degraded" in frame
        assert "(lifetime)" in frame
        # Per-replica rows with health states from /healthz.
        assert "degraded" in frame
        # Windowed TTFT table (lifetime on first frame).
        assert "interactive" in frame and "10" in frame
        # Phase breakdown, sorted by window seconds.
        assert "decode" in frame and "decode/adc_gather" in frame
        # Active checks surface their reason verbatim.
        assert "burning 2.00x" in frame

    def test_rates_are_windowed_between_polls(self, current):
        previous = TopSample(
            ts=0.0,
            families=parse_exposition(
                SCRAPE.replace(
                    "repro_gateway_tokens_streamed_total 100",
                    "repro_gateway_tokens_streamed_total 50",
                )
            ),
            health=dict(HEALTH),
        )
        frame = render_frame(current, previous, color=False)
        # (100-50) tokens over 10s = 5 tok/s.
        assert "tok/s=5.0" in frame
        assert "last 10.0s" in frame

    def test_phase_breakdown_diffs_against_previous(self, current):
        previous = TopSample(
            ts=0.0,
            families=parse_exposition(
                SCRAPE.replace(
                    'repro_engine_phase_seconds{replica="0",phase="decode/adc_gather"} 0.8',
                    'repro_engine_phase_seconds{replica="0",phase="decode/adc_gather"} 0.8'
                    "",
                ).replace(
                    'repro_engine_phase_seconds{replica="0",phase="decode"} 2.0',
                    'repro_engine_phase_seconds{replica="0",phase="decode"} 1.0',
                )
            ),
            health=dict(HEALTH),
        )
        frame = render_frame(current, previous, color=False)
        # decode grew by 1.0s in the window; adc_gather did not move, so it
        # drops out of the windowed breakdown entirely.
        lines = [l for l in frame.splitlines() if "adc_gather" in l]
        assert not lines

    def test_color_codes_present_only_when_enabled(self, current):
        assert "\x1b[" in render_frame(current, color=True)
        assert "\x1b[" not in render_frame(current, color=False)

    def test_frame_handles_empty_health_and_families(self):
        empty = TopSample(ts=0.0, families={}, health={})
        frame = render_frame(empty, color=False)
        assert "repro-obs top" in frame  # degrades gracefully, no crash
