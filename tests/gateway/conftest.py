"""Fixtures and HTTP helpers for the gateway tests.

The gateway tests run a real :class:`GatewayServer` on an ephemeral
localhost port inside each test's own event loop (``asyncio.run``), and talk
to it with a raw asyncio HTTP/1.1 client — the same wire format curl uses,
no test-only shortcuts through the server internals.
"""

from __future__ import annotations

import asyncio
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import MillionConfig, calibrate_million
from repro.models import ModelConfig, build_model


# -- HTTP client helpers -----------------------------------------------------


async def raw_request(host, port, method, path, payload=None, raw_body=None):
    """One request/response exchange; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = raw_body
        if body is None:
            body = json.dumps(payload).encode() if payload is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: gw\r\n"
        if body:
            head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        data = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, payload_bytes = data.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload_bytes


def sse_events(body: bytes) -> list:
    """Decode the JSON payload of every ``data:`` frame (minus ``[DONE]``)."""
    events = []
    for line in body.decode().splitlines():
        if line.startswith("data: ") and line != "data: [DONE]":
            events.append(json.loads(line[len("data: "):]))
    return events


def sse_token_ids(body: bytes) -> list[int]:
    tokens = []
    for event in sse_events(body):
        token = event["choices"][0]["token_id"]
        if token is not None:
            tokens.append(token)
    return tokens


def sse_finish_reason(body: bytes):
    reasons = [
        event["choices"][0]["finish_reason"]
        for event in sse_events(body)
        if event["choices"][0]["finish_reason"] is not None
    ]
    return reasons[-1] if reasons else None


@pytest.fixture(scope="session")
def gw():
    """Namespace of client helpers (importable-from-anywhere without sys.path games)."""
    return SimpleNamespace(
        raw_request=raw_request,
        sse_events=sse_events,
        sse_token_ids=sse_token_ids,
        sse_finish_reason=sse_finish_reason,
    )


# -- Long-context model for the 1k-prefix routing test -----------------------


@pytest.fixture(scope="session")
def long_config() -> ModelConfig:
    """Tiny model that can hold a 1k-token shared prefix plus suffixes."""
    return ModelConfig(
        name="test-gateway-long",
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=1152,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )


@pytest.fixture(scope="session")
def long_model(long_config):
    return build_model(long_config, seed=7)


@pytest.fixture(scope="session")
def long_million_config(long_config) -> MillionConfig:
    return MillionConfig.for_equivalent_bits(
        long_config.head_dim, bits=4, kmeans_iters=4, calibration_samples=768
    )


@pytest.fixture(scope="session")
def long_factory(long_model, calibration_tokens, long_million_config):
    return calibrate_million(long_model, calibration_tokens, long_million_config)


@pytest.fixture(scope="session")
def long_prefix(long_config) -> np.ndarray:
    """1024-token shared prompt prefix (the acceptance-criteria workload)."""
    from repro.data import load_corpus

    return load_corpus("wikitext2-syn", "test", 1024, seed=21) % long_config.vocab_size
