"""Protocol-layer tests: request parsing, response shaping, SSE framing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.gateway.protocol import (
    SSE_DONE,
    CompletionRequest,
    ProtocolError,
    chunk_json,
    completion_json,
    finish_reason_label,
    sse_event,
)
from repro.models.tokenizer import ByteTokenizer
from repro.serving.request import FinishReason


class TestCompletionRequestParsing:
    def test_token_id_prompt(self):
        request = CompletionRequest.from_json(
            {"prompt": [1, 2, 3], "max_tokens": 4, "stream": True, "seed": 9},
            vocab_size=128,
        )
        np.testing.assert_array_equal(request.prompt_ids, [1, 2, 3])
        assert request.max_tokens == 4 and request.stream and request.seed == 9

    def test_string_prompt_folds_into_vocab(self):
        request = CompletionRequest.from_json(
            {"prompt": "hello"}, tokenizer=ByteTokenizer(), vocab_size=64
        )
        assert request.prompt_ids.size == 5
        assert int(request.prompt_ids.max()) < 64

    def test_defaults(self):
        request = CompletionRequest.from_json({"prompt": [5]}, vocab_size=128)
        assert request.max_tokens == 16
        assert not request.stream
        assert request.stop_token_id is None and request.seed is None

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([1, 2], "JSON object"),
            ({}, "missing required field 'prompt'"),
            ({"prompt": ""}, "not be empty"),
            ({"prompt": []}, "not be empty"),
            ({"prompt": [1.5]}, "integer token ids"),
            ({"prompt": [1, True]}, "integer token ids"),
            ({"prompt": [-1]}, "non-negative"),
            ({"prompt": [500]}, "outside the model vocabulary"),
            ({"prompt": {"bad": 1}}, "string or a list"),
            ({"prompt": [1], "max_tokens": 0}, "max_tokens"),
            ({"prompt": [1], "max_tokens": "many"}, "max_tokens"),
            ({"prompt": [1], "max_tokens": 1 << 20}, "max_tokens"),
            ({"prompt": [1], "stream": "yes"}, "'stream' must be a boolean"),
            ({"prompt": [1], "stop_token_id": "x"}, "stop_token_id"),
            ({"prompt": [1], "seed": 1.5}, "'seed' must be an integer"),
            ({"prompt": [1], "priority": "urgent"}, "'priority' must be one of"),
            ({"prompt": [1], "priority": 3}, "'priority' must be one of"),
            ({"prompt": [1], "tenant": ""}, "'tenant' must be a non-empty"),
            ({"prompt": [1], "tenant": "x" * 65}, "at most 64 characters"),
            ({"prompt": [1], "tenant": 7}, "'tenant' must be a non-empty"),
        ],
    )
    def test_rejections(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            CompletionRequest.from_json(
                payload, tokenizer=ByteTokenizer(), vocab_size=128
            )

    def test_string_prompt_without_tokenizer_rejected(self):
        with pytest.raises(ProtocolError, match="tokenizer"):
            CompletionRequest.from_json({"prompt": "hi"}, vocab_size=128)

    def test_to_generation_request_round_trip(self):
        request = CompletionRequest.from_json(
            {"prompt": [3, 4], "max_tokens": 7, "stop_token_id": 5}, vocab_size=128
        )
        generation = request.to_generation_request()
        assert generation.max_new_tokens == 7 and generation.stop_token == 5
        np.testing.assert_array_equal(generation.prompt_ids, [3, 4])

    def test_priority_and_tenant_pass_through(self):
        request = CompletionRequest.from_json(
            {"prompt": [1], "priority": "best_effort", "tenant": "acme"},
            vocab_size=128,
        )
        generation = request.to_generation_request()
        assert generation.priority == "best_effort"
        assert generation.tenant == "acme"

    def test_priority_defaults_to_interactive(self):
        request = CompletionRequest.from_json({"prompt": [1]}, vocab_size=128)
        assert request.priority == "interactive" and request.tenant is None


class TestResponseShaping:
    def _request(self) -> CompletionRequest:
        return CompletionRequest.from_json(
            {"prompt": [1, 2, 3], "max_tokens": 4}, vocab_size=128
        )

    def test_completion_json_usage_accounting(self):
        body = completion_json(
            "req-0000", self._request(), [7, 8], FinishReason.LENGTH,
            tokenizer=ByteTokenizer(),
        )
        assert body["id"] == "cmpl-req-0000"
        assert body["object"] == "text_completion"
        choice = body["choices"][0]
        assert choice["token_ids"] == [7, 8]
        assert choice["finish_reason"] == "length"
        assert body["usage"] == {
            "prompt_tokens": 3,
            "completion_tokens": 2,
            "total_tokens": 5,
        }

    def test_chunk_json_token_and_finish_marker(self):
        mid = chunk_json("r", self._request(), 65, None, tokenizer=ByteTokenizer())
        assert mid["object"] == "text_completion.chunk"
        assert mid["choices"][0]["token_id"] == 65
        assert mid["choices"][0]["text"] == "A"
        assert mid["choices"][0]["finish_reason"] is None
        final = chunk_json("r", self._request(), None, FinishReason.STOP_TOKEN)
        assert final["choices"][0]["token_id"] is None
        assert final["choices"][0]["finish_reason"] == "stop"

    def test_sse_event_framing(self):
        frame = sse_event({"a": 1})
        assert frame.startswith(b"data: ") and frame.endswith(b"\n\n")
        assert json.loads(frame[len(b"data: "):]) == {"a": 1}
        assert SSE_DONE == b"data: [DONE]\n\n"

    def test_finish_reason_labels_cover_every_reason(self):
        assert finish_reason_label(None) is None
        for reason in FinishReason:
            assert isinstance(finish_reason_label(reason), str)
