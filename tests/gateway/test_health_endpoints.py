"""Health endpoints end to end: liveness vs readiness, SLO burn, routing.

The PR's acceptance criterion lives here: drive a live gateway into SLO
burn with real HTTP traffic and watch ``/healthz`` flip to degraded with
the offending rule named, then confirm the router shifts new work away
from a degraded replica.
"""

from __future__ import annotations

import asyncio
import json

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.health import HealthEngine, HealthPolicy
from repro.obs.prof import PhaseProfiler
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)


def _make_server(
    config,
    factory,
    replicas=1,
    million_config=None,
    pool_blocks=0,
    health=None,
    **engine_kwargs,
):
    engines = []
    for _ in range(replicas):
        model = build_model(config, seed=7)
        if pool_blocks > 0:
            pool = BlockPool.for_model(
                config, million_config, num_blocks=pool_blocks, block_tokens=32
            )
            engine_factory = PooledMillionCacheFactory.from_factory(factory, pool)
        else:
            engine_factory = factory
        engines.append(BatchedMillionEngine(model, engine_factory, **engine_kwargs))
    runners = [
        AsyncEngineRunner(engine, name=f"replica-{i}")
        for i, engine in enumerate(engines)
    ]
    return GatewayServer(
        ReplicaRouter(runners), tokenizer=ByteTokenizer(), health=health
    )


async def _complete(gw, host, port, prompt, max_tokens=4):
    status, _, body = await gw.raw_request(
        host, port, "POST", "/v1/completions",
        {"prompt": prompt, "max_tokens": max_tokens},
    )
    assert status == 200
    return json.loads(body)


class TestReadiness:
    def test_readyz_503_until_startup_finishes(
        self, tiny_config, million_factory, gw
    ):
        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start_listening(port=0)
            try:
                # Liveness answers immediately, but admits it is not ready.
                live_status, _, live_body = await gw.raw_request(
                    host, port, "GET", "/healthz"
                )
                ready_status, _, ready_body = await gw.raw_request(
                    host, port, "GET", "/readyz"
                )
                await server.finish_startup()
                after_status, _, after_body = await gw.raw_request(
                    host, port, "GET", "/readyz"
                )
            finally:
                await server.stop()
            return (
                live_status, json.loads(live_body),
                ready_status, json.loads(ready_body),
                after_status, json.loads(after_body),
            )

        (live_status, live, ready_status, not_ready,
         after_status, ready) = asyncio.run(scenario())
        assert live_status == 200 and live["ready"] is False
        assert ready_status == 503
        assert not_ready["ready"] is False
        assert not_ready["reason"] == "replicas are not started"
        assert after_status == 200
        assert ready == {"ready": True, "status": "ok", "reason": "ok"}

    def test_healthz_shape(self, tiny_config, million_factory, gw):
        async def scenario():
            server = _make_server(tiny_config, million_factory, replicas=2)
            host, port = await server.start(port=0)
            try:
                status, _, body = await gw.raw_request(host, port, "GET", "/healthz")
            finally:
                await server.stop()
            return status, json.loads(body)

        status, report = asyncio.run(scenario())
        assert status == 200
        assert report["status"] == "ok"
        assert report["ready"] is True
        assert report["replicas"] == 2
        assert set(report) >= {
            "status", "ready", "model", "replicas", "in_flight",
            "window_s", "burn_rates", "checks", "replica_health",
        }
        assert [r["state"] for r in report["replica_health"]] == ["ok", "ok"]


class TestSloBurn:
    def test_traffic_breaching_slo_flips_healthz_degraded(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        # An impossible TTFT SLO: every served request breaches it.  With a
        # 50% objective the burn rate lands at 1/0.5 = 2x — degraded, not
        # unhealthy, so the verdict and the named rule are both exercised.
        health = HealthEngine(
            HealthPolicy(
                window_s=60.0, objective=0.5, ttft_slo_s={"interactive": 1e-9}
            )
        )
        prompt = calibration_tokens[:12].tolist()

        async def scenario():
            server = _make_server(
                tiny_config, million_factory, health=health,
                prof=PhaseProfiler(),
            )
            host, port = await server.start(port=0)
            try:
                _, _, before = await gw.raw_request(host, port, "GET", "/healthz")
                for _ in range(3):
                    await _complete(gw, host, port, prompt)
                _, _, after = await gw.raw_request(host, port, "GET", "/healthz")
                _, _, metrics = await gw.raw_request(host, port, "GET", "/metrics")
            finally:
                await server.stop()
            return json.loads(before), json.loads(after), metrics.decode()

        before, after, metrics = asyncio.run(scenario())
        # First scrape has no window delta yet — cumulative state alone
        # must never fire the burn rule.
        assert before["status"] == "ok"
        assert after["status"] == "degraded"
        assert after["burn_rates"]["interactive"] >= 1.0
        [check] = [c for c in after["checks"] if c["rule"] == "slo_burn"]
        assert check["state"] == "degraded"
        assert "interactive" in check["reason"]
        # The verdict, the burn rate and the phase attribution all surface
        # as first-class metric families.
        assert "repro_health_state 1" in metrics
        assert 'repro_slo_burn_rate{priority="interactive"}' in metrics
        assert 'repro_engine_phase_seconds{replica="0",phase="decode"}' in metrics


class TestRouterHealthShift:
    def test_load_shifts_away_from_degraded_replica(
        self, tiny_config, million_factory, million_config, gw
    ):
        health = HealthEngine(HealthPolicy(max_pool_pressure=0.9))

        async def scenario():
            server = _make_server(
                tiny_config, million_factory, replicas=2,
                million_config=million_config, pool_blocks=64, health=health,
            )
            # Replica 0's pool reports saturation: the next health scrape
            # must degrade it and steer fresh prompts to replica 1.
            pool = server.router.runners[0].engine.pool
            real_stats = pool.stats
            pool.stats = lambda: {**real_stats(), "pressure": 0.99}
            host, port = await server.start(port=0)
            try:
                _, _, verdict = await gw.raw_request(host, port, "GET", "/healthz")
                # Distinct prompts so neither prefix nor sticky affinity
                # can pin a request to the saturated replica.
                for seed in range(4):
                    await _complete(gw, host, port, [seed + 1, seed + 2, seed + 3])
                decode_walls = [
                    runner.engine.decode_seconds_total
                    for runner in server.router.runners
                ]
            finally:
                await server.stop()
            return json.loads(verdict), decode_walls, server.router.stats()

        verdict, decode_walls, router_stats = asyncio.run(scenario())
        assert verdict["status"] == "degraded"
        [check] = [c for c in verdict["checks"] if c["rule"] == "pool_pressure"]
        assert check["scope"] == "replica-0"
        assert [r["state"] for r in verdict["replica_health"]] == ["degraded", "ok"]
        # All four fresh prompts landed on the healthy replica.
        assert decode_walls[0] == 0.0 and decode_walls[1] > 0.0
        assert router_stats["health_avoided"] >= 4
