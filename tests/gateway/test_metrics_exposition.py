"""Every ``/metrics`` scrape must be valid Prometheus text exposition.

These tests scrape the live gateway and push the body through
:func:`repro.obs.promtext.parse_exposition`, which raises on the failure
modes the renderer must never produce: missing HELP/TYPE, duplicate
samples, non-cumulative histogram buckets, ``_count``/``+Inf`` mismatch,
and Python-style ``inf``/``nan`` floats.  On top of the structural check
they pin the PR's acceptance criteria: the TTFT/ITL histogram families are
present from the very first scrape (zero-valued, no first-scrape gap),
carry per-tier labels, and their ``_count`` matches the requests served.
"""

from __future__ import annotations

import asyncio

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.promtext import parse_exposition
from repro.serving import BatchedMillionEngine


def _make_server(config, factory, tier_factories=None, **engine_kwargs):
    model = build_model(config, seed=7)
    engine = BatchedMillionEngine(
        model, factory, tier_factories=tier_factories, **engine_kwargs
    )
    runner = AsyncEngineRunner(engine, name="replica-0")
    return GatewayServer(ReplicaRouter([runner]), tokenizer=ByteTokenizer())


async def _scrape(gw, host, port):
    status, _, body = await gw.raw_request(host, port, "GET", "/metrics")
    assert status == 200
    return parse_exposition(body.decode())


class TestFirstScrape:
    def test_first_scrape_valid_with_zero_valued_latency_families(
        self, tiny_config, million_factory, gw
    ):
        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        # No first-scrape gap: latency families exist before any request,
        # with the "default" tier pre-seeded at zero.
        for name in ("repro_gateway_ttft_seconds", "repro_gateway_itl_seconds"):
            family = families[name]
            assert family.type == "histogram"
            assert family.value(tier="default", le="+Inf") == 0.0
        assert (
            families["repro_gateway_http_requests_total"].value(
                path="/v1/completions", status="200"
            )
            == 0.0
        )
        # Engine-side histograms render from boot too.
        assert families["repro_engine_queue_wait_seconds"].value(
            replica="0", le="+Inf"
        ) == 0.0
        for kind in ("prefill", "decode"):
            assert families["repro_engine_step_seconds"].value(
                replica="0", kind=kind, le="+Inf"
            ) == 0.0
        assert "repro_engine_fused_batch_size" in families


class TestServedScrapes:
    def test_latency_counts_match_requests_served(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        n_requests, n_tokens = 3, 5
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                for _ in range(n_requests):
                    status, _, _ = await gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": n_tokens, "stream": True},
                    )
                    assert status == 200
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        ttft = families["repro_gateway_ttft_seconds"]
        itl = families["repro_gateway_itl_seconds"]
        # One TTFT observation per request; every later token is one ITL gap.
        assert ttft.value(tier="default", le="+Inf") == n_requests
        assert itl.value(tier="default", le="+Inf") == n_requests * (n_tokens - 1)
        # Engine saw the same requests.
        assert families["repro_engine_queue_wait_seconds"].value(
            replica="0", le="+Inf"
        ) == n_requests
        assert families["repro_gateway_http_requests_total"].value(
            path="/v1/completions", status="200"
        ) == n_requests

    def test_tiered_requests_get_tier_labelled_histograms(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(
                tiny_config, million_factory,
                tier_factories={"quality": million_factory},
            )
            host, port = await server.start(port=0)
            try:
                for tier, count in (("quality", 2), (None, 1)):
                    for _ in range(count):
                        payload = {"prompt": prompt, "max_tokens": 3}
                        if tier is not None:
                            payload["tier"] = tier
                        status, _, _ = await gw.raw_request(
                            host, port, "POST", "/v1/completions", payload
                        )
                        assert status == 200
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        ttft = families["repro_gateway_ttft_seconds"]
        assert ttft.value(tier="quality", le="+Inf") == 2.0
        assert ttft.value(tier="default", le="+Inf") == 1.0
        itl = families["repro_gateway_itl_seconds"]
        assert itl.value(tier="quality", le="+Inf") == 2.0 * 2
        assert itl.value(tier="default", le="+Inf") == 1.0 * 2

    def test_error_paths_keep_exposition_valid(
        self, tiny_config, million_factory, gw
    ):
        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                status, _, _ = await gw.raw_request(
                    host, port, "POST", "/v1/completions", {"max_tokens": 2}
                )
                assert status == 400
                status, _, _ = await gw.raw_request(host, port, "GET", "/nope")
                assert status == 404
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        assert families["repro_gateway_http_requests_total"].value(
            path="/v1/completions", status="400"
        ) == 1.0
        # Errored requests never reach a first token.
        assert families["repro_gateway_ttft_seconds"].value(
            tier="default", le="+Inf"
        ) == 0.0


class TestPriorityFamilies:
    def test_priority_labelled_latency_and_engine_families(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                for priority, count in (("best_effort", 2), (None, 1)):
                    for _ in range(count):
                        payload = {"prompt": prompt, "max_tokens": 3}
                        if priority is not None:
                            payload["priority"] = priority
                        status, _, _ = await gw.raw_request(
                            host, port, "POST", "/v1/completions", payload
                        )
                        assert status == 200
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        ttft = families["repro_gateway_priority_ttft_seconds"]
        assert ttft.type == "histogram"
        assert ttft.value(priority="best_effort", le="+Inf") == 2.0
        # Omitting the field means interactive — the default class.
        assert ttft.value(priority="interactive", le="+Inf") == 1.0
        itl = families["repro_gateway_priority_itl_seconds"]
        assert itl.value(priority="best_effort", le="+Inf") == 2.0 * 2
        # Per-replica scheduler state and lifetime counters render for both
        # classes even when nothing was preempted or shed.
        for label in ("interactive", "best_effort"):
            assert families["repro_engine_priority_queued"].value(
                replica="0", priority=label
            ) == 0.0
            assert families["repro_engine_priority_running"].value(
                replica="0", priority=label
            ) == 0.0
            assert families["repro_engine_priority_preemptions_total"].value(
                replica="0", priority=label
            ) == 0.0
            assert families["repro_engine_slo_rejections_total"].value(
                replica="0", priority=label
            ) == 0.0

    def test_pool_pressure_gauge_renders_with_pooled_engine(
        self, tiny_config, million_config, million_factory, calibration_tokens, gw
    ):
        from repro.serving import BlockPool, PooledMillionCacheFactory

        prompt = calibration_tokens[:10].tolist()
        pool = BlockPool.for_model(
            tiny_config, million_config, num_blocks=64, block_tokens=32
        )
        pooled = PooledMillionCacheFactory.from_factory(million_factory, pool)

        async def scenario():
            server = _make_server(tiny_config, pooled)
            host, port = await server.start(port=0)
            try:
                status, _, _ = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 3},
                )
                assert status == 200
                return await _scrape(gw, host, port)
            finally:
                await server.stop()

        families = asyncio.run(scenario())
        pressure = families["repro_pool_pressure"]
        assert pressure.type == "gauge"
        assert 0.0 <= pressure.value(replica="0") <= 1.0
