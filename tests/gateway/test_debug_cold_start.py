"""Cold-start contract for the debug endpoints and the metrics scrape.

A gateway that has served **zero** completed requests must still answer
``GET /debug/prof`` and ``GET /debug/trace`` with schema-valid (empty)
payloads, and ``GET /metrics`` must already expose the engine timing
families — a collector or profiler UI that starts alongside the gateway
sees well-formed data, not a crash or a gap until the first request lands.
These tests pin that contract so a refactor of the payload builders can't
quietly regress the empty case.
"""

from __future__ import annotations

import asyncio
import json

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.export import validate_chrome_trace
from repro.obs.prof import PhaseProfiler, validate_prof_payload
from repro.obs.trace import TraceRecorder
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)


def _make_server(tiny_config, million_config, million_factory, profiled=True):
    """A pooled chunked-prefill replica that has never served a request."""
    model = build_model(tiny_config, seed=7)
    pool = BlockPool.for_model(
        tiny_config, million_config, num_blocks=64, block_tokens=4
    )
    engine = BatchedMillionEngine(
        model,
        PooledMillionCacheFactory.from_factory(million_factory, pool),
        trace=TraceRecorder(capacity=1024),
        trace_track="replica-0",
        prof=PhaseProfiler() if profiled else None,
        chunked_prefill=True,
    )
    runner = AsyncEngineRunner(engine, name="replica-0")
    return GatewayServer(ReplicaRouter([runner]), tokenizer=ByteTokenizer())


async def _cold_get(tiny_config, million_config, million_factory, gw, path,
                    profiled=True):
    server = _make_server(tiny_config, million_config, million_factory, profiled)
    host, port = await server.start(port=0)
    try:
        return await gw.raw_request(host, port, "GET", path)
    finally:
        await server.stop()


class TestColdStart:
    def test_debug_prof_valid_and_empty_before_any_request(
        self, tiny_config, million_config, million_factory, gw
    ):
        status, headers, body = asyncio.run(
            _cold_get(tiny_config, million_config, million_factory, gw, "/debug/prof")
        )
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        payload = json.loads(body)
        validate_prof_payload(payload)
        assert payload["enabled"] is True
        assert payload["phases"] == []  # nothing ran, nothing attributed

    def test_debug_prof_disabled_profiler_is_still_valid(
        self, tiny_config, million_config, million_factory, gw
    ):
        status, _, body = asyncio.run(
            _cold_get(tiny_config, million_config, million_factory, gw,
                      "/debug/prof", profiled=False)
        )
        assert status == 200
        payload = json.loads(body)
        validate_prof_payload(payload)
        assert payload["enabled"] is False

    def test_debug_trace_valid_and_empty_before_any_request(
        self, tiny_config, million_config, million_factory, gw
    ):
        status, headers, body = asyncio.run(
            _cold_get(tiny_config, million_config, million_factory, gw, "/debug/trace")
        )
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        trace = json.loads(body)
        validate_chrome_trace(trace)
        # Only metadata (track names) may be present — no request events.
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
        assert trace["otherData"]["truncated"] is False

    def test_metrics_scrape_exposes_engine_families_cold(
        self, tiny_config, million_config, million_factory, gw
    ):
        status, _, body = asyncio.run(
            _cold_get(tiny_config, million_config, million_factory, gw, "/metrics")
        )
        assert status == 200
        text = body.decode()
        # Engine timing families exist from scrape one, including the
        # chunked-prefill counter and budget gauge, all at their zero state.
        for needle in (
            "repro_engine_fused_decode_steps_total",
            "repro_engine_prefill_chunks_total",
            "repro_engine_step_budget_utilization",
        ):
            assert needle in text, needle
        assert 'repro_engine_prefill_chunks_total{replica="0"} 0' in text
        assert 'repro_engine_step_budget_utilization{replica="0"} 0.0' in text
