"""Trace endpoints: ``/debug/trace`` and ``/v1/requests/<id>/trace``.

The PR's acceptance criterion lives here: an exported Chrome trace pulled
from the live gateway must validate against the trace-event schema and
contain the *correlated* gateway→engine lifecycle — queue wait, prefill,
at least one decode step listing the request, and a first-token instant —
for every request served, stitched across tracks by flow events.
"""

from __future__ import annotations

import asyncio
import json

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.export import validate_chrome_trace
from repro.obs.trace import TraceRecorder
from repro.serving import BatchedMillionEngine


def _make_traced_server(config, factory, capacity=8192, **engine_kwargs):
    model = build_model(config, seed=7)
    engine = BatchedMillionEngine(
        model, factory,
        trace=TraceRecorder(capacity=capacity), trace_track="replica-0",
        **engine_kwargs,
    )
    runner = AsyncEngineRunner(engine, name="replica-0")
    return GatewayServer(ReplicaRouter([runner]), tokenizer=ByteTokenizer())


def _events_for(trace: dict, request_id: str) -> list[dict]:
    return [
        e for e in trace["traceEvents"]
        if e.get("args", {}).get("request_id") == request_id
    ]


def _track_names(trace: dict) -> dict[int, str]:
    return {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


async def _serve_requests(gw, host, port, prompt, n_requests, max_tokens=4):
    """POST ``n_requests`` completions; return their engine request ids."""
    ids = []
    for _ in range(n_requests):
        status, _, body = await gw.raw_request(
            host, port, "POST", "/v1/completions",
            {"prompt": prompt, "max_tokens": max_tokens},
        )
        assert status == 200
        ids.append(json.loads(body)["id"][len("cmpl-"):])
    return ids


class TestDebugTrace:
    def test_exported_trace_correlates_every_request(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:12].tolist()

        async def scenario():
            server = _make_traced_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                ids = await _serve_requests(gw, host, port, prompt, n_requests=3)
                status, headers, body = await gw.raw_request(
                    host, port, "GET", "/debug/trace"
                )
                assert status == 200
                assert headers["content-type"].startswith("application/json")
                return ids, json.loads(body)
            finally:
                await server.stop()

        ids, trace = asyncio.run(scenario())
        validate_chrome_trace(trace)
        assert trace["otherData"]["truncated"] is False
        tracks = _track_names(trace)
        assert set(tracks.values()) == {"gateway", "replica-0"}

        decode_steps = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "decode_step"
        ]
        for request_id in ids:
            events = _events_for(trace, request_id)
            by_name = {}
            for event in events:
                by_name.setdefault(event["name"], []).append(event)
            # The full lifecycle, correlated by request id across tracks.
            for name in ("request", "queue_wait", "prefill", "first_token"):
                assert by_name.get(name), f"{name} missing for {request_id}"
            assert tracks[by_name["request"][0]["tid"]] == "gateway"
            assert tracks[by_name["prefill"][0]["tid"]] == "replica-0"
            assert by_name["first_token"][0]["ph"] == "i"
            # Queue wait ends no later than prefill starts.
            wait, prefill = by_name["queue_wait"][0], by_name["prefill"][0]
            assert wait["ts"] <= prefill["ts"]
            # At least one decode step served this request.
            assert any(
                request_id in step["args"]["requests"] for step in decode_steps
            )
            # Flow arrows stitch the request's spans into one chain that
            # crosses from the gateway track to the engine track.
            flow = [
                e for e in trace["traceEvents"]
                if e["ph"] in ("s", "t", "f")
                and e["name"] == f"request:{request_id}"
            ]
            assert [e["ph"] for e in flow][:1] == ["s"]
            assert flow[-1]["ph"] == "f"
            assert len({e["id"] for e in flow}) == 1
            assert len({e["tid"] for e in flow}) == 2

    def test_since_filter_and_validation(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_traced_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                await _serve_requests(gw, host, port, prompt, n_requests=1)
                _, _, all_body = await gw.raw_request(
                    host, port, "GET", "/debug/trace"
                )
                _, _, late_body = await gw.raw_request(
                    host, port, "GET", "/debug/trace?since=1e12"
                )
                bad_status, _, _ = await gw.raw_request(
                    host, port, "GET", "/debug/trace?since=yesterday"
                )
                return json.loads(all_body), json.loads(late_body), bad_status
            finally:
                await server.stop()

        full, late, bad_status = asyncio.run(scenario())
        assert full["otherData"]["events"] > 0
        assert late["otherData"]["events"] == 0
        assert late["traceEvents"] == []
        assert bad_status == 400

    def test_non_finite_since_rejected(self, tiny_config, million_factory, gw):
        # float('nan')/float('inf') parse fine, so a plain float() guard
        # would let them through and silently break the filter comparison.
        async def scenario():
            server = _make_traced_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                statuses = []
                for value in ("nan", "inf", "-inf", "NaN"):
                    status, _, body = await gw.raw_request(
                        host, port, "GET", f"/debug/trace?since={value}"
                    )
                    statuses.append((status, json.loads(body)))
                return statuses
            finally:
                await server.stop()

        for status, body in asyncio.run(scenario()):
            assert status == 400
            assert "finite" in body["error"]["message"]

    def test_truncated_flag_set_when_ring_wraps(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            # An 8-event ring cannot hold three requests' lifecycles.
            server = _make_traced_server(tiny_config, million_factory, capacity=8)
            host, port = await server.start(port=0)
            try:
                await _serve_requests(gw, host, port, prompt, n_requests=3)
                _, _, body = await gw.raw_request(host, port, "GET", "/debug/trace")
                return json.loads(body)
            finally:
                await server.stop()

        trace = asyncio.run(scenario())
        validate_chrome_trace(trace)
        assert trace["otherData"]["truncated"] is True
        assert trace["otherData"]["dropped_events"] > 0

    def test_request_id_filter(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_traced_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                ids = await _serve_requests(gw, host, port, prompt, n_requests=2)
                _, _, body = await gw.raw_request(
                    host, port, "GET", f"/debug/trace?request_id={ids[0]}"
                )
                return ids, json.loads(body)
            finally:
                await server.stop()

        (wanted, other), trace = asyncio.run(scenario())
        assert _events_for(trace, wanted)
        assert not _events_for(trace, other)


class TestPerRequestTrace:
    def test_single_request_trace_and_404(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:12].tolist()

        async def scenario():
            server = _make_traced_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                ids = await _serve_requests(gw, host, port, prompt, n_requests=2)
                status, _, body = await gw.raw_request(
                    host, port, "GET", f"/v1/requests/{ids[0]}/trace"
                )
                missing_status, _, _ = await gw.raw_request(
                    host, port, "GET", "/v1/requests/no-such-request/trace"
                )
                return ids, status, json.loads(body), missing_status
            finally:
                await server.stop()

        (wanted, other), status, trace, missing_status = asyncio.run(scenario())
        assert status == 200
        assert missing_status == 404
        validate_chrome_trace(trace)
        named = [
            e["name"] for e in trace["traceEvents"] if e["ph"] in ("X", "i")
        ]
        assert "request" in named and "prefill" in named
        assert not _events_for(trace, other)


class TestUntracedGateway:
    def test_debug_trace_reports_disabled_recorder(
        self, tiny_config, million_factory, gw
    ):
        async def scenario():
            model = build_model(tiny_config, seed=7)
            engine = BatchedMillionEngine(model, million_factory)
            runner = AsyncEngineRunner(engine, name="replica-0")
            server = GatewayServer(
                ReplicaRouter([runner]), tokenizer=ByteTokenizer()
            )
            host, port = await server.start(port=0)
            try:
                status, _, body = await gw.raw_request(
                    host, port, "GET", "/debug/trace"
                )
                return status, json.loads(body)
            finally:
                await server.stop()

        status, trace = asyncio.run(scenario())
        assert status == 200
        assert trace["traceEvents"] == []
        assert trace["otherData"]["enabled"] is False
