"""End-to-end gateway tests over real HTTP on an ephemeral localhost port.

Covers the PR's acceptance criteria:

* a streamed completion through the gateway is token-identical to
  :meth:`BatchedMillionEngine.run` for the same request;
* two concurrent requests sharing a 1k-token prefix are routed to the same
  replica by the :class:`ReplicaRouter` and reuse published pool blocks,
  asserted through the ``/metrics`` prefix-hit counters;

plus protocol errors, 429 backpressure, and disconnect-driven cancellation
(including a disconnect that lands while the request is still prefilling).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    FinishReason,
    PooledMillionCacheFactory,
)


def _make_server(
    config, factory, replicas=1, million_config=None, pool_blocks=0,
    block_tokens=32, **engine_kwargs
):
    """Fresh models (identical weights via the fixture seed) → engines → server."""
    engines = []
    for _ in range(replicas):
        model = build_model(config, seed=7)
        if pool_blocks > 0:
            pool = BlockPool.for_model(
                config, million_config, num_blocks=pool_blocks, block_tokens=block_tokens
            )
            engine_factory = PooledMillionCacheFactory.from_factory(factory, pool)
        else:
            engine_factory = factory
        engines.append(BatchedMillionEngine(model, engine_factory, **engine_kwargs))
    runners = [
        AsyncEngineRunner(engine, name=f"replica-{i}")
        for i, engine in enumerate(engines)
    ]
    return GatewayServer(ReplicaRouter(runners), tokenizer=ByteTokenizer())


def _parse_prometheus(text: str) -> dict[str, float]:
    """``{'name{labels}': value}`` for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


class TestCompletionEndpoint:
    def test_streamed_tokens_identical_to_engine_run(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:16]
        reference_engine = BatchedMillionEngine(
            build_model(tiny_config, seed=7), million_factory
        )
        request_id = reference_engine.add_request(prompt, max_new_tokens=10)
        expected = reference_engine.run()[request_id]

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                status, headers, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt.tolist(), "max_tokens": 10, "stream": True},
                )
                assert status == 200
                assert headers["content-type"].startswith("text/event-stream")
                assert body.endswith(b"data: [DONE]\n\n")
                assert gw.sse_finish_reason(body) == "length"
                return gw.sse_token_ids(body)
            finally:
                await server.stop()

        streamed = asyncio.run(scenario())
        np.testing.assert_array_equal(np.asarray(streamed), expected)

    def test_non_streaming_response_and_usage(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:12]

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                status, _, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt.tolist(), "max_tokens": 5},
                )
                return status, json.loads(body)
            finally:
                await server.stop()

        status, payload = asyncio.run(scenario())
        assert status == 200
        choice = payload["choices"][0]
        assert len(choice["token_ids"]) == 5
        assert choice["finish_reason"] == "length"
        assert payload["usage"]["prompt_tokens"] == 12
        assert payload["usage"]["total_tokens"] == 17

    def test_stop_token_streams_stop_finish(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:16]
        reference_engine = BatchedMillionEngine(
            build_model(tiny_config, seed=7), million_factory
        )
        request_id = reference_engine.add_request(prompt, max_new_tokens=12)
        reference = reference_engine.run()[request_id]
        stop = int(reference[2])

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                _, _, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {
                        "prompt": prompt.tolist(), "max_tokens": 12,
                        "stream": True, "stop_token_id": stop,
                    },
                )
                return gw.sse_token_ids(body), gw.sse_finish_reason(body)
            finally:
                await server.stop()

        tokens, finish = asyncio.run(scenario())
        assert finish == "stop"
        assert tokens == reference[: len(tokens)].tolist()
        assert tokens[-1] == stop


class TestErrorPaths:
    def test_protocol_and_routing_errors(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            results = {}
            try:
                results["bad_json"] = await gw.raw_request(
                    host, port, "POST", "/v1/completions", raw_body=b"{nope"
                )
                results["missing_prompt"] = await gw.raw_request(
                    host, port, "POST", "/v1/completions", {"max_tokens": 4}
                )
                results["bad_max_tokens"] = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": [1, 2], "max_tokens": 0},
                )
                results["oversized_prompt"] = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {
                        "prompt": list(range(2)) * tiny_config.max_seq_len,
                        "max_tokens": 4,
                    },
                )
                results["not_found"] = await gw.raw_request(
                    host, port, "GET", "/v2/everything"
                )
                results["wrong_method"] = await gw.raw_request(
                    host, port, "GET", "/v1/completions"
                )
                return results
            finally:
                await server.stop()

        results = asyncio.run(scenario())
        for name, status in [
            ("bad_json", 400), ("missing_prompt", 400), ("bad_max_tokens", 400),
            ("oversized_prompt", 400), ("not_found", 404), ("wrong_method", 405),
        ]:
            got_status, _, body = results[name]
            assert got_status == status, (name, got_status)
            assert "error" in json.loads(body), name

    def test_stepper_death_fails_request_instead_of_hanging(
        self, tiny_config, million_factory, million_config, calibration_tokens, gw
    ):
        """A request larger than the whole pool kills its prefill with
        PoolExhaustedError inside the stepper; the client must get a 500
        (not hang forever) and the failed replica must refuse new work."""
        prompt = np.resize(calibration_tokens, 300).tolist()

        async def scenario():
            # 8 blocks of 32 tokens cannot hold a 300-token sequence.
            server = _make_server(
                tiny_config, million_factory, million_config=million_config,
                pool_blocks=8, block_tokens=32,
            )
            runner = server.router.runners[0]
            host, port = await server.start(port=0)
            try:
                status, _, body = await asyncio.wait_for(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 4},
                    ),
                    timeout=30,
                )
                assert status == 500, body
                assert runner.error is not None
                # The dead replica is routed around: backpressure, not a hang.
                status, _, _ = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": [1, 2, 3], "max_tokens": 2},
                )
                assert status == 429
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_deep_queue_returns_429(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        """One running + one queued at max_queue_size=1 → the third gets 429."""
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(
                tiny_config, million_factory, max_batch_size=1, max_queue_size=1
            )
            host, port = await server.start(port=0)
            try:
                # A long-running stream occupies the single batch slot...
                first = asyncio.create_task(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2000, "stream": True},
                    )
                )
                await asyncio.sleep(0.25)  # first is decoding by now
                # ... the second fills the wait queue (it will stay queued the
                # whole time the first decodes — max_batch_size is 1) ...
                second = asyncio.create_task(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2},
                    )
                )
                await asyncio.sleep(0.25)
                # ... so the third must be refused with backpressure.
                status, headers, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 2},
                )
                assert status == 429, body
                assert headers.get("retry-after") == "1"
                assert "queue" in json.loads(body)["error"]["message"]
                first_status, _, _ = await first
                second_status, _, _ = await second
                assert first_status == 200 and second_status == 200
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_slo_admission_returns_429_with_projected_retry_hint(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        """With an (absurdly tight) interactive SLO, a submission whose
        projected queue wait exceeds it is shed with 429 — and the
        ``Retry-After`` hint comes from the projection, not the coarse
        hard-cap default.  Best-effort has no SLO and still queues."""
        from repro.serving import SloPolicy

        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(
                tiny_config, million_factory, max_batch_size=1,
                slo_policy=SloPolicy(interactive_slo_s=1e-4),
            )
            host, port = await server.start(port=0)
            try:
                # Two sequential completions establish the scheduler's
                # admission-interval estimate (a cold scheduler never sheds).
                for _ in range(2):
                    status, _, _ = await gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2},
                    )
                    assert status == 200
                # A long stream pins the single batch slot ...
                stream = asyncio.create_task(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2000, "stream": True},
                    )
                )
                await asyncio.sleep(0.3)
                # ... a queued interactive request sits ahead of any newcomer
                # (its own projected wait was 0 — nothing was queued) ...
                queued = asyncio.create_task(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2},
                    )
                )
                await asyncio.sleep(0.3)
                # ... so the next interactive projection is ≥ one admission
                # interval > the SLO: shed with a Retry-After hint.
                status, headers, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 2},
                )
                assert status == 429, body
                assert int(headers.get("retry-after")) >= 1
                assert "SLO" in json.loads(body)["error"]["message"]
                # Best-effort work has no SLO: same backlog, still accepted
                # (it blocks behind the stream, so just check it queued).
                best_effort = asyncio.create_task(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prompt, "max_tokens": 2,
                         "priority": "best_effort"},
                    )
                )
                await asyncio.sleep(0.2)
                assert not best_effort.done()  # queued, not 429ed
                stream_status, _, _ = await stream
                assert stream_status == 200
                queued_status, _, _ = await queued
                best_status, _, _ = await best_effort
                assert queued_status == 200 and best_status == 200
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestDisconnectCancellation:
    async def _open_stream(self, host, port, payload):
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"POST /v1/completions HTTP/1.1\r\nHost: gw\r\n"
                f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        return reader, writer

    async def _await_cancelled(self, engine, deadline=5.0):
        elapsed = 0.0
        while elapsed < deadline:
            finished = engine.scheduler.finished_states()
            if finished and finished[0].finish_reason is FinishReason.CANCELLED:
                return finished[0]
            await asyncio.sleep(0.02)
            elapsed += 0.02
        raise AssertionError("request was not cancelled within the deadline")

    def test_mid_stream_disconnect_cancels_request(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            engine = server.router.runners[0].engine
            host, port = await server.start(port=0)
            try:
                reader, writer = await self._open_stream(
                    host, port, {"prompt": prompt, "max_tokens": 500, "stream": True}
                )
                # Read a couple of streamed chunks, then vanish mid-stream.
                buffered = b""
                while buffered.count(b"data: ") < 3:
                    chunk = await reader.read(1024)
                    assert chunk, "stream ended before any token arrived"
                    buffered += chunk
                writer.close()
                state = await self._await_cancelled(engine)
                # Generation stopped early: far fewer tokens than requested.
                assert 0 < len(state.generated) < 500
                assert server.metrics.streams_cancelled == 1
                assert not engine.scheduler.has_work  # slot freed immediately
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_disconnect_before_first_token_cancels_during_prefill(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        """Client vanishes right after submitting: the cancel lands while the
        request is queued or still prefilling, before any chunk is written."""
        prompt = np.resize(calibration_tokens, 400).tolist()  # long prefill

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            engine = server.router.runners[0].engine
            host, port = await server.start(port=0)
            try:
                _, writer = await self._open_stream(
                    host, port, {"prompt": prompt, "max_tokens": 100, "stream": True}
                )
                writer.close()  # never read a single byte of the response
                state = await self._await_cancelled(engine)
                assert len(state.generated) < 100
                assert state.context is None  # caches released on cancel
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestObservability:
    def test_healthz_and_metrics_render(
        self, tiny_config, million_factory, calibration_tokens, gw
    ):
        prompt = calibration_tokens[:8].tolist()

        async def scenario():
            server = _make_server(tiny_config, million_factory)
            host, port = await server.start(port=0)
            try:
                status, _, body = await gw.raw_request(host, port, "GET", "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok" and health["replicas"] == 1
                await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 3},
                )
                status, headers, body = await gw.raw_request(
                    host, port, "GET", "/metrics"
                )
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                return _parse_prometheus(body.decode())
            finally:
                await server.stop()

        samples = asyncio.run(scenario())
        assert samples["repro_gateway_tokens_streamed_total"] == 3
        assert (
            samples['repro_gateway_http_requests_total{path="/v1/completions",status="200"}']
            == 1
        )
        assert samples['repro_engine_finished{replica="0"}'] == 1
        assert samples["repro_gateway_requests_in_flight"] == 0


class TestPrefixAffinityAcrossReplicas:
    def test_concurrent_shared_1k_prefix_lands_on_one_replica(
        self, long_config, long_factory, long_million_config, long_prefix, gw
    ):
        """Acceptance criteria: two concurrent requests sharing a 1k-token
        prefix are routed to the same replica and the second reuses the
        first's published pool blocks (visible in /metrics prefix-hit
        counters); the other replica computes nothing."""
        rng = np.random.default_rng(3)
        suffix_a = rng.integers(0, long_config.vocab_size, size=8).tolist()
        suffix_b = rng.integers(0, long_config.vocab_size, size=8).tolist()
        prefix = long_prefix.tolist()
        block_tokens = 32

        async def scenario():
            server = _make_server(
                long_config, long_factory, replicas=2,
                million_config=long_million_config, pool_blocks=512,
                block_tokens=block_tokens, max_batch_size=2,
            )
            host, port = await server.start(port=0)
            try:
                responses = await asyncio.gather(
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prefix + suffix_a, "max_tokens": 4, "stream": True},
                    ),
                    gw.raw_request(
                        host, port, "POST", "/v1/completions",
                        {"prompt": prefix + suffix_b, "max_tokens": 4},
                    ),
                )
                for status, _, _ in responses:
                    assert status == 200
                _, _, metrics_body = await gw.raw_request(host, port, "GET", "/metrics")
                return _parse_prometheus(metrics_body.decode())
            finally:
                await server.stop()

        samples = asyncio.run(scenario())
        prefix_blocks = len(long_prefix) // block_tokens  # 32 blocks of shared prefix
        hits = [
            samples[f'repro_engine_prefix_block_hits_total{{replica="{i}"}}']
            for i in range(2)
        ]
        computed = [
            samples[f'repro_engine_prefill_tokens_computed_total{{replica="{i}"}}']
            for i in range(2)
        ]
        reused = [
            samples[f'repro_engine_prefill_tokens_reused_total{{replica="{i}"}}']
            for i in range(2)
        ]
        adoptions = [
            samples[f'repro_pool_adoptions_total{{replica="{i}"}}'] for i in range(2)
        ]
        serving = int(np.argmax(computed))
        other = 1 - serving
        # Both requests landed on one replica; the other replica stayed cold.
        assert computed[other] == 0 and reused[other] == 0 and hits[other] == 0
        # The second request adopted the full published 1k prefix chain.
        assert hits[serving] == prefix_blocks
        assert reused[serving] == prefix_blocks * block_tokens
        assert adoptions[serving] >= prefix_blocks
        # Router placed at least one request by affinity (sticky or pool).
        prefix_routed = samples['repro_router_decisions_total{strategy="prefix"}']
        sticky_routed = samples['repro_router_decisions_total{strategy="sticky"}']
        assert prefix_routed + sticky_routed >= 1
