"""`docs/OPERATIONS.md` must document every exported `/metrics` family.

The operator's guide carries a catalogue of metric families; this test
scrapes a live in-process gateway (pooled engine, one served request so the
dynamic families render too), parses the exposition, and diffs the family
names against the doc. A new family added to the renderer without a row in
the catalogue fails here — documentation drift is a test failure, not a
review nit.
"""

from __future__ import annotations

import asyncio
import re
from pathlib import Path

from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.promtext import parse_exposition
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)

OPERATIONS_MD = Path(__file__).resolve().parents[2] / "docs" / "OPERATIONS.md"


def _scrape_families(config, million_config, factory, gw):
    model = build_model(config, seed=7)
    pool = BlockPool.for_model(
        config, million_config, num_blocks=64, block_tokens=32
    )
    pooled = PooledMillionCacheFactory.from_factory(factory, pool)
    engine = BatchedMillionEngine(model, pooled)
    server = GatewayServer(
        ReplicaRouter([AsyncEngineRunner(engine)]), tokenizer=ByteTokenizer()
    )

    async def scenario():
        host, port = await server.start(port=0)
        try:
            status, _, _ = await gw.raw_request(
                host, port, "POST", "/v1/completions",
                {"prompt": [1, 2, 3, 4], "max_tokens": 3},
            )
            assert status == 200
            status, _, body = await gw.raw_request(host, port, "GET", "/metrics")
            assert status == 200
            return parse_exposition(body.decode())
        finally:
            await server.stop()

    return asyncio.run(scenario())


def test_every_exported_family_is_documented(
    tiny_config, million_config, million_factory, gw
):
    families = _scrape_families(tiny_config, million_config, million_factory, gw)
    assert len(families) > 20  # the scrape itself must be substantive
    doc = OPERATIONS_MD.read_text()
    missing = sorted(name for name in families if name not in doc)
    assert not missing, (
        "docs/OPERATIONS.md is missing exported /metrics families: "
        f"{missing} — add a catalogue row for each"
    )


def test_documented_families_exist_in_the_renderer():
    """The reverse direction: the catalogue must not document families the
    renderer no longer exports (tolerating histogram suffixes)."""
    import repro.gateway.metrics as metrics_module
    import inspect

    source = inspect.getsource(metrics_module)
    doc = OPERATIONS_MD.read_text()
    documented = set(re.findall(r"`(repro_[a-z0-9_]+)`", doc))
    assert documented, "catalogue lost its family names"
    base_names = {
        name.removesuffix("_bucket").removesuffix("_sum").removesuffix("_count")
        for name in documented
    }
    stale = sorted(
        name for name in base_names
        # Histogram families render as name_bucket/_sum/_count from a common
        # stem; gateway families are built as f"{_GATEWAY_PREFIX}_<suffix>",
        # so accept the suffix alone for those.
        if name not in source
        and name.removeprefix("repro_gateway") not in source
    )
    assert not stale, (
        f"docs/OPERATIONS.md documents families the renderer lacks: {stale}"
    )
