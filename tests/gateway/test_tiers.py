"""Gateway-level tests for per-request quality tiers.

The wire format gains an optional ``tier`` field; the gateway validates its
shape at the protocol layer (400 on malformed), passes it through to the
engine verbatim, and the engine rejects unknown tiers at submission (also
mapped to 400).  ``/metrics`` exposes per-tier counters.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.calibration import train_million_quantizers
from repro.core.million_cache import MillionCacheFactory
from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.gateway.protocol import CompletionRequest, ProtocolError
from repro.models import build_model
from repro.models.tokenizer import ByteTokenizer
from repro.quant.policy import million_variant
from repro.serving import BatchedMillionEngine


@pytest.fixture(scope="module")
def tiered_engine_parts(tiny_config, million_factory, kv_samples):
    variant = million_variant(
        tiny_config.head_dim, 8, kmeans_iters=3, calibration_samples=768
    )
    quality = MillionCacheFactory(
        train_million_quantizers(kv_samples, variant), variant
    )
    return million_factory, quality


def _make_tiered_server(config, default_factory, quality_factory):
    model = build_model(config, seed=7)
    engine = BatchedMillionEngine(
        model,
        default_factory,
        max_batch_size=4,
        tier_factories={"quality": quality_factory, "balanced": default_factory},
    )
    runner = AsyncEngineRunner(engine, name="replica-0")
    return GatewayServer(ReplicaRouter([runner]), tokenizer=ByteTokenizer())


class TestTierProtocol:
    def test_tier_parses_and_passes_through(self):
        request = CompletionRequest.from_json(
            {"prompt": [1, 2, 3], "max_tokens": 2, "tier": "quality"}
        )
        assert request.tier == "quality"
        assert request.to_generation_request().tier == "quality"

    def test_tier_defaults_to_none(self):
        request = CompletionRequest.from_json({"prompt": [1, 2, 3]})
        assert request.tier is None
        assert request.to_generation_request().tier is None

    @pytest.mark.parametrize("bad", [123, "", True, ["quality"]])
    def test_malformed_tier_rejected(self, bad):
        with pytest.raises(ProtocolError):
            CompletionRequest.from_json({"prompt": [1, 2], "tier": bad})


class TestTieredServing:
    def test_tiered_completions_and_metrics(
        self, tiny_config, tiered_engine_parts, calibration_tokens, gw
    ):
        default_factory, quality_factory = tiered_engine_parts
        prompt = calibration_tokens[:10].tolist()

        async def scenario():
            server = _make_tiered_server(tiny_config, default_factory, quality_factory)
            host, port = await server.start(port=0)
            try:
                results = {}
                for tier in (None, "quality", "balanced"):
                    payload = {"prompt": prompt, "max_tokens": 4}
                    if tier is not None:
                        payload["tier"] = tier
                    status, _, body = await gw.raw_request(
                        host, port, "POST", "/v1/completions", payload
                    )
                    assert status == 200, body
                    results[tier] = json.loads(body)["choices"][0]["token_ids"]

                status, _, body = await gw.raw_request(
                    host, port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 2, "tier": "turbo"},
                )
                assert status == 400
                assert b"unknown tier" in body

                status, _, metrics_body = await gw.raw_request(
                    host, port, "GET", "/metrics"
                )
                assert status == 200
                return results, metrics_body.decode()
            finally:
                await server.stop()

        results, metrics = asyncio.run(scenario())
        # The balanced tier aliases the default factory: identical tokens.
        assert results["balanced"] == results[None]
        assert len(results["quality"]) == 4

        samples = {}
        for line in metrics.splitlines():
            if line and not line.startswith("#"):
                key, _, value = line.rpartition(" ")
                samples[key] = float(value)
        for tier in ("default", "quality", "balanced"):
            key = (
                'repro_engine_tier_requests_total'
                f'{{replica="0",tier="{tier}"}}'
            )
            assert samples[key] == 1.0, (key, samples)
            running = f'repro_engine_tier_running{{replica="0",tier="{tier}"}}'
            assert samples[running] == 0.0
