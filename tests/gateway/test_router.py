"""Router tests with stub replicas (no event loop, no model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gateway.router import ReplicaRouter
from repro.serving.memory import chain_hashes
from repro.serving.scheduler import QueueFullError

BLOCK = 8


class StubRunner:
    """Just the probe surface the router touches."""

    def __init__(self, load=0, queue_full=False, published_tokens=None):
        self.load = load
        self.queue_full = queue_full
        # Chain hashes this "replica's pool" pretends to have published.
        self._published = set()
        if published_tokens is not None:
            self._published.update(chain_hashes(published_tokens, BLOCK))

    def longest_prefix(self, hashes, block_tokens):
        if block_tokens != BLOCK:
            return 0
        hits = 0
        for chain_hash in hashes:
            if chain_hash not in self._published:
                break
            hits += 1
        return hits


def _prompt(seed, n=4 * BLOCK):
    return np.random.default_rng(seed).integers(0, 100, size=n)


class TestReplicaRouter:
    def test_prefix_affinity_beats_load(self):
        prompt = _prompt(0)
        holder = StubRunner(load=10, published_tokens=prompt)
        idle = StubRunner(load=0)
        router = ReplicaRouter([idle, holder], block_tokens=BLOCK)
        decision = router.route(prompt)
        assert decision.replica_index == 1 and decision.reason == "prefix"
        assert decision.affinity_blocks == 3  # aligned prefix of a 32-token prompt

    def test_deeper_prefix_wins(self):
        prompt = _prompt(1)
        shallow = StubRunner(published_tokens=prompt[:BLOCK])
        deep = StubRunner(load=5, published_tokens=prompt)
        router = ReplicaRouter([shallow, deep], block_tokens=BLOCK)
        assert router.route(prompt).replica_index == 1

    def test_sticky_covers_prepublication_window(self):
        """Back-to-back shared-prefix requests co-locate before any block publishes."""
        prompt_a = np.concatenate([_prompt(2), [1]])
        prompt_b = np.concatenate([_prompt(2), [2]])  # same aligned prefix
        replicas = [StubRunner(load=1), StubRunner(load=0)]
        router = ReplicaRouter(replicas, block_tokens=BLOCK)
        first = router.route(prompt_a)
        assert first.reason == "least_loaded" and first.replica_index == 1
        replicas[1].load = 50  # far busier now — affinity must still win
        second = router.route(prompt_b)
        assert second.replica_index == 1 and second.reason == "sticky"

    def test_least_loaded_fallback_and_tie_break(self):
        router = ReplicaRouter(
            [StubRunner(load=3), StubRunner(load=1), StubRunner(load=1)],
            block_tokens=BLOCK,
        )
        decision = router.route(_prompt(3))
        assert decision.replica_index == 1  # lowest load, lowest index on tie
        assert decision.reason == "least_loaded"

    def test_saturated_replica_never_chosen(self):
        prompt = _prompt(4)
        holder = StubRunner(published_tokens=prompt, queue_full=True)
        spare = StubRunner(load=7)
        router = ReplicaRouter([holder, spare], block_tokens=BLOCK)
        assert router.route(prompt).replica_index == 1

    def test_all_saturated_raises_backpressure(self):
        router = ReplicaRouter(
            [StubRunner(queue_full=True), StubRunner(queue_full=True)],
            block_tokens=BLOCK,
        )
        with pytest.raises(QueueFullError):
            router.route(_prompt(5))
        assert router.stats()["rejected"] == 1

    def test_sticky_table_is_lru_bounded(self):
        router = ReplicaRouter(
            [StubRunner(), StubRunner()], block_tokens=BLOCK, max_sticky_entries=4
        )
        for seed in range(10):
            router.route(_prompt(seed))
        assert router.stats()["sticky_entries"] <= 4

    def test_decision_counters(self):
        prompt = _prompt(6)
        holder = StubRunner(published_tokens=prompt)
        router = ReplicaRouter([holder, StubRunner()], block_tokens=BLOCK)
        router.route(prompt)           # prefix
        router.route(_prompt(7))       # least_loaded
        stats = router.stats()
        assert stats["prefix_routed"] == 1 and stats["load_routed"] == 1
