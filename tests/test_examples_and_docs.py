"""Smoke checks for the example scripts and repository documentation.

The examples are part of the public surface: they must at least parse, expose
a ``main`` entry point and only import public ``repro`` APIs.  Full runs are
exercised manually / by the benchmarks, not here (they take minutes).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    function_names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in function_names, f"{path.name} must define main()"
    # Every example must carry a module docstring explaining what it shows.
    assert ast.get_docstring(tree), f"{path.name} is missing a module docstring"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            # Examples should not reach into private helpers.
            for alias in node.names:
                assert not alias.name.startswith("_"), (
                    f"{path.name} imports private name {alias.name} from {node.module}"
                )


def test_documentation_files_present_and_nontrivial():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} is missing"
        assert len(path.read_text()) > 2000, f"{name} looks like a stub"


def test_design_lists_every_benchmark():
    design = (REPO_ROOT / "DESIGN.md").read_text()
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in design, f"DESIGN.md does not reference {bench.name}"


def test_public_package_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None


def test_pyproject_metadata_is_valid():
    tomllib = pytest.importorskip("tomllib")  # stdlib on 3.11+
    data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    project = data["project"]
    assert project["name"] == "repro-million"
    assert "numpy" in " ".join(project["dependencies"])
    test_extra = " ".join(project["optional-dependencies"]["test"])
    assert "pytest" in test_extra and "hypothesis" in test_extra
    # Version is dynamic, sourced from repro.version.
    assert "version" in project["dynamic"]
    attr = data["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    assert attr == "repro.version.__version__"
    import repro.version

    assert repro.version.__version__

    # The repro-bench console script must point at a real callable.
    module_name, func_name = project["scripts"]["repro-bench"].split(":")
    import importlib

    entry = getattr(importlib.import_module(module_name), func_name)
    assert callable(entry)
