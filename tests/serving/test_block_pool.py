"""Tests for the paged KV block pool: sharing, admission, preemption, cancel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    FinishReason,
    PooledMillionCacheFactory,
    PoolExhaustedError,
    RequestStatus,
    chain_hashes,
    hash_token_block,
)

BLOCK_TOKENS = 4


def make_pool(tiny_config, million_config, num_blocks=256):
    return BlockPool.for_model(
        tiny_config, million_config, num_blocks=num_blocks, block_tokens=BLOCK_TOKENS
    )


@pytest.fixture()
def pooled_engine_factory(tiny_model, tiny_config, million_factory, million_config):
    """Builds a fresh pooled engine (own pool) per call; cleans the model up."""

    def build(num_blocks=256, max_batch_size=4):
        pool = make_pool(tiny_config, million_config, num_blocks=num_blocks)
        factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        return BatchedMillionEngine(tiny_model, factory, max_batch_size=max_batch_size)

    yield build
    tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestChainHashes:
    def test_chain_covers_whole_prefix(self):
        tokens = np.arange(16)
        hashes = chain_hashes(tokens, 4)
        assert len(hashes) == 4
        # Same block content at a different chain position hashes differently.
        shifted = chain_hashes(np.concatenate([[99], tokens])[:16], 4)
        assert hashes[0] != shifted[0]
        # Prefix property: equal prefixes produce equal leading hashes.
        again = chain_hashes(np.concatenate([tokens[:8], [1, 2, 3, 4]]), 4)
        assert again[:2] == hashes[:2] and again[2] != hashes[2]

    def test_partial_trailing_block_is_ignored(self):
        assert len(chain_hashes(np.arange(7), 4)) == 1
        assert chain_hashes(np.arange(3), 4) == []

    def test_hash_token_block_is_deterministic(self):
        a = hash_token_block(b"\x00" * 16, np.asarray([1, 2, 3]))
        b = hash_token_block(b"\x00" * 16, np.asarray([1, 2, 3]))
        assert a == b and len(a) == 16


class TestBlockPool:
    def _pool(self, num_blocks=8, n_layers=2):
        return BlockPool(
            num_blocks=num_blocks,
            block_tokens=4,
            n_layers=n_layers,
            kv_heads=2,
            key_subspaces=8,
            value_subspaces=8,
        )

    def _codes(self, pool, seed=0):
        rng = np.random.default_rng(seed)
        shape = (pool.block_tokens, *pool.key_row_shape)
        return rng.integers(0, 255, size=shape).astype(np.uint8)

    def test_allocate_write_read_roundtrip(self):
        pool = self._pool()
        block_id = pool.allocate_block()
        codes = self._codes(pool)
        pool.write_block(block_id, codes, codes + 1)
        np.testing.assert_array_equal(pool.key_codes(block_id), codes)
        np.testing.assert_array_equal(pool.value_codes(block_id), codes + 1)
        assert pool.refcount(block_id) == 1
        assert pool.used_block_count == 1 and pool.free_block_count == 7

    def test_exhaustion_raises_when_nothing_evictable(self):
        pool = self._pool(num_blocks=2)
        pool.allocate_block()
        pool.allocate_block()
        with pytest.raises(PoolExhaustedError):
            pool.allocate_block()

    def test_double_free_guarded(self):
        pool = self._pool()
        block_id = pool.allocate_block()
        pool.decref(block_id)
        with pytest.raises(Exception, match="not allocated|double free"):
            pool.decref(block_id)

    def test_private_block_freed_at_refcount_zero(self):
        pool = self._pool()
        block_id = pool.allocate_block()
        pool.decref(block_id)
        assert pool.free_block_count == pool.num_blocks

    def test_publish_adopt_and_refcounts(self):
        pool = self._pool()
        group = [pool.allocate_block() for _ in range(pool.n_layers)]
        for bid in group:
            pool.write_block(bid, self._codes(pool), self._codes(pool))
        digest = hash_token_block(b"\x00" * 16, np.arange(4))
        pool.publish(digest, group)
        assert pool.lookup(digest) == tuple(group)
        adopted = pool.adopt(digest)
        assert adopted == tuple(group)
        assert all(pool.refcount(b) == 2 for b in group)
        with pytest.raises(KeyError):
            pool.adopt(b"\xff" * 16)

    def test_published_blocks_become_cached_then_evicted_lru(self):
        pool = self._pool(num_blocks=4, n_layers=2)
        digests = []
        for i in range(2):
            group = [pool.allocate_block() for _ in range(2)]
            for bid in group:
                pool.write_block(bid, self._codes(pool, i), self._codes(pool, i))
            digest = hash_token_block(b"\x00" * 16, np.asarray([i]))
            pool.publish(digest, group)
            for bid in group:
                pool.decref(bid)
            digests.append(digest)
        # All four blocks are cached (refcount 0, contents kept).
        assert pool.free_block_count == 0
        assert pool.evictable_block_count == 4
        assert pool.can_allocate(4) and not pool.can_allocate(5)
        # Allocation evicts the least recently used group (the first one).
        pool.allocate_block()
        assert pool.lookup(digests[0]) is None
        assert pool.lookup(digests[1]) is not None
        assert pool.evictions == 1

    def test_adoption_protects_group_from_eviction(self):
        pool = self._pool(num_blocks=4, n_layers=2)
        group = [pool.allocate_block() for _ in range(2)]
        for bid in group:
            pool.write_block(bid, self._codes(pool), self._codes(pool))
        digest = hash_token_block(b"\x00" * 16, np.arange(4))
        pool.publish(digest, group)
        for bid in group:
            pool.decref(bid)
        assert pool.group_is_evictable(digest)
        pool.adopt(digest)  # re-referenced: no longer evictable
        assert not pool.group_is_evictable(digest)
        pool.allocate_block()
        pool.allocate_block()
        with pytest.raises(PoolExhaustedError):
            pool.allocate_block()

    def test_shared_blocks_are_immutable(self):
        pool = self._pool()
        group = [pool.allocate_block() for _ in range(pool.n_layers)]
        for bid in group:
            pool.write_block(bid, self._codes(pool), self._codes(pool))
        pool.publish(hash_token_block(b"\x00" * 16, np.arange(4)), group)
        with pytest.raises(Exception, match="published"):
            pool.write_block(group[0], self._codes(pool), self._codes(pool))

    def test_stats_keys(self):
        stats = self._pool().stats()
        for key in ("num_blocks", "free_blocks", "used_blocks", "utilization",
                    "memory_bytes", "allocations", "evictions", "adoptions"):
            assert key in stats


class TestPrefixSharing:
    def test_prefix_blocks_and_prefill_paid_once(
        self, pooled_engine_factory, calibration_tokens
    ):
        """N requests sharing a prompt pay its aligned prefix exactly once."""
        engine = pooled_engine_factory(max_batch_size=4)
        prompt = calibration_tokens[:41]
        n_requests = 4
        aligned = BLOCK_TOKENS * ((prompt.size - 1) // BLOCK_TOKENS)
        for _ in range(n_requests):
            engine.add_request(prompt, max_new_tokens=4)
        engine.step()  # admits and prefills all four
        # Prefix compute paid once; every other request only runs the tail.
        tail = prompt.size - aligned
        assert engine.prefill_tokens_computed == prompt.size + (n_requests - 1) * tail
        assert engine.prefill_tokens_reused == (n_requests - 1) * aligned
        # The aligned prefix occupies one set of blocks, shared by all four.
        pool = engine.pool
        n_layers = pool.n_layers
        expected_prefix_blocks = (aligned // BLOCK_TOKENS) * n_layers
        running = engine.scheduler.running
        tables = [cache.block_table for cache in running[0].context.caches]
        shared = {bid for table in tables for bid in table[: aligned // BLOCK_TOKENS]}
        assert len(shared) == expected_prefix_blocks
        for bid in shared:
            assert pool.refcount(bid) == n_requests
        # Aggregate accounting counts shared blocks once: the four sequences
        # together reference exactly the unique prefix blocks.
        results = engine.run()
        outputs = list(results.values())
        for other in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], other)

    def test_shared_prefill_identical_to_cold_prefill(
        self, pooled_engine_factory, calibration_tokens
    ):
        """Adopting published blocks must not change the generated tokens."""
        prompt = calibration_tokens[:30]
        cold = pooled_engine_factory().generate_batch([prompt], max_new_tokens=8)[0]
        engine = pooled_engine_factory()
        first = engine.generate_batch([prompt], max_new_tokens=8)[0]
        warm = engine.generate_batch([prompt], max_new_tokens=8)[0]  # prefix hit
        assert engine.prefill_tokens_reused > 0
        np.testing.assert_array_equal(cold, first)
        np.testing.assert_array_equal(cold, warm)

    def test_copy_on_write_divergence_after_shared_prefix(
        self, pooled_engine_factory, calibration_tokens
    ):
        """Diverging suffixes write private blocks; the shared prefix stays intact."""
        engine = pooled_engine_factory()
        pool = engine.pool
        prefix = calibration_tokens[:24]
        prompt_a = np.concatenate([prefix, calibration_tokens[50:58]])
        prompt_b = np.concatenate([prefix, calibration_tokens[60:68]])
        engine.add_request(prompt_a, max_new_tokens=6)
        engine.add_request(prompt_b, max_new_tokens=6)
        engine.step()
        state_a, state_b = engine.scheduler.running
        table_a = state_a.context.caches[0].block_table
        table_b = state_b.context.caches[0].block_table
        n_shared = prefix.size // BLOCK_TOKENS
        assert table_a[:n_shared] == table_b[:n_shared]  # same physical blocks
        assert set(table_a[n_shared:]).isdisjoint(table_b[n_shared:])
        shared_codes = pool.key_codes(table_a[0]).copy()
        # Outputs match what each prompt produces alone (no cross-corruption),
        # and the shared blocks' contents are untouched by the divergence.
        results = engine.run()
        np.testing.assert_array_equal(pool.key_codes(table_a[0]), shared_codes)
        solo_a = pooled_engine_factory().generate_batch([prompt_a], 6)[0]
        solo_b = pooled_engine_factory().generate_batch([prompt_b], 6)[0]
        outputs = list(results.values())
        np.testing.assert_array_equal(outputs[0], solo_a)
        np.testing.assert_array_equal(outputs[1], solo_b)

    def test_finished_requests_leave_blocks_cached_for_reuse(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory()
        prompt = calibration_tokens[:20]
        engine.generate_batch([prompt], max_new_tokens=4)
        pool = engine.pool
        # All references dropped, but published groups remain cached.
        assert pool.evictable_block_count > 0
        assert pool.available_block_count == pool.num_blocks
        engine.generate_batch([prompt], max_new_tokens=4)
        assert engine.prefill_tokens_reused > 0


class TestMemoryAwareAdmission:
    def test_admission_waits_for_pool_capacity(
        self, pooled_engine_factory, calibration_tokens
    ):
        """With a pool fitting ~one sequence, requests run one after another."""
        engine = pooled_engine_factory(num_blocks=14, max_batch_size=4)
        prompts = [calibration_tokens[i : i + 17] for i in (0, 30, 60)]
        for prompt in prompts:
            engine.add_request(prompt, max_new_tokens=4)
        engine.step()
        assert engine.running_count < 3  # the pool refused at least one
        results = engine.run()
        assert len(results) == 3  # but everyone completes eventually
        solo = pooled_engine_factory().generate_batch(prompts, max_new_tokens=4)
        for got, want in zip(results.values(), solo):
            np.testing.assert_array_equal(got, want)

    def test_request_larger_than_pool_is_a_hard_error(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory(num_blocks=4)
        engine.add_request(calibration_tokens[:60], max_new_tokens=2)
        with pytest.raises(PoolExhaustedError):
            engine.run()


class TestPreemption:
    def test_preempted_and_restored_outputs_token_identical(
        self, pooled_engine_factory, calibration_tokens
    ):
        prompts = [calibration_tokens[i : i + 20] for i in (0, 25, 50)]
        uncontended = pooled_engine_factory(num_blocks=512)
        reference = uncontended.generate_batch(prompts, max_new_tokens=16)
        assert uncontended.preemption_count == 0
        contended = pooled_engine_factory(num_blocks=30)
        outputs = contended.generate_batch(prompts, max_new_tokens=16)
        assert contended.preemption_count >= 1
        for want, got in zip(reference, outputs):
            np.testing.assert_array_equal(want, got)
        preempted = [
            s for s in contended.scheduler.finished_states() if s.preemptions > 0
        ]
        assert preempted, "at least one sequence must have been preempted"
        assert all(s.finish_reason is FinishReason.LENGTH for s in preempted)

    def test_preemption_evicts_youngest_and_frees_blocks(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory(num_blocks=26, max_batch_size=2)
        first = engine.add_request(calibration_tokens[:20], max_new_tokens=16)
        second = engine.add_request(calibration_tokens[25:45], max_new_tokens=16)
        preempted_ids = []
        original = engine._preempt

        def spy(state):
            preempted_ids.append(state.request_id)
            original(state)

        engine._preempt = spy
        engine.run()
        assert preempted_ids, "the tiny pool must force a preemption"
        # The youngest running sequence (admitted last) is evicted first.
        assert preempted_ids[0] == second
        state = engine.state_of(second)
        assert state.preemptions >= 1
        # After draining, no blocks are referenced.
        assert engine.pool.available_block_count == engine.pool.num_blocks
        np.testing.assert_array_equal(
            engine.state_of(first).generated_ids,
            pooled_engine_factory(num_blocks=512).generate_batch(
                [calibration_tokens[:20]], max_new_tokens=16
            )[0],
        )

    def test_preempted_status_visible_while_queued(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory(num_blocks=26, max_batch_size=2)
        engine.add_request(calibration_tokens[:20], max_new_tokens=16)
        second = engine.add_request(calibration_tokens[25:45], max_new_tokens=16)
        seen_preempted = False
        while engine.scheduler.has_work:
            engine.step()
            if engine.state_of(second).status is RequestStatus.PREEMPTED:
                seen_preempted = True
        assert seen_preempted
        assert engine.state_of(second).is_finished


class TestCancel:
    def test_cancel_queued_request(self, pooled_engine_factory, calibration_tokens):
        engine = pooled_engine_factory(max_batch_size=1)
        first = engine.add_request(calibration_tokens[:10], max_new_tokens=4)
        second = engine.add_request(calibration_tokens[10:20], max_new_tokens=4)
        engine.step()  # first running, second still queued
        assert engine.cancel(second) is True
        state = engine.state_of(second)
        assert state.is_finished and state.finish_reason is FinishReason.CANCELLED
        results = engine.run()
        assert results[second].size == 0
        assert results[first].shape == (4,)

    def test_cancel_running_request_frees_blocks(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory()
        request_id = engine.add_request(calibration_tokens[:20], max_new_tokens=50)
        engine.step()
        assert engine.running_count == 1
        pool = engine.pool
        assert pool.available_block_count < pool.num_blocks  # blocks referenced
        assert engine.cancel(request_id) is True
        assert engine.running_count == 0
        assert pool.available_block_count == pool.num_blocks
        state = engine.state_of(request_id)
        assert state.finish_reason is FinishReason.CANCELLED
        assert state.context is None
        assert not engine.scheduler.has_work

    def test_cancel_finished_returns_false_and_unknown_raises(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory()
        request_id = engine.add_request(calibration_tokens[:10], max_new_tokens=2)
        engine.run()
        assert engine.cancel(request_id) is False
        with pytest.raises(Exception, match="unknown request id"):
            engine.cancel("no-such-request")

    def test_cancelled_result_counts_generated_so_far(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory()
        request_id = engine.add_request(calibration_tokens[:10], max_new_tokens=50)
        engine.step()
        engine.step()
        engine.cancel(request_id)
        results = engine.run()
        assert results[request_id].size == 2  # one token per completed step


class TestStats:
    def test_stats_shapes_and_pool_section(
        self, pooled_engine_factory, calibration_tokens
    ):
        engine = pooled_engine_factory()
        prompt = calibration_tokens[:30]
        engine.add_request(prompt, max_new_tokens=8)
        engine.add_request(prompt, max_new_tokens=8)
        engine.step()
        stats = engine.stats()
        assert stats["running"] == 2
        assert stats["prefill_tokens_reused"] > 0
        assert stats["pool"]["used_blocks"] > 0
        assert 0.0 < stats["pool"]["utilization"] <= 1.0
        assert stats["active_cache_memory_bytes"] > 0.0
        engine.run()
        assert engine.stats()["active_cache_memory_bytes"] == 0.0

    def test_aggregate_memory_counts_shared_prefix_once(
        self, pooled_engine_factory, calibration_tokens
    ):
        prompt = calibration_tokens[:41]
        solo = pooled_engine_factory()
        solo.add_request(prompt, max_new_tokens=4)
        solo.step()
        single = solo.active_cache_memory_bytes()
        shared = pooled_engine_factory()
        for _ in range(4):
            shared.add_request(prompt, max_new_tokens=4)
        shared.step()
        aggregate = shared.active_cache_memory_bytes()
        # Four sequences sharing the prefix cost far less than four privates;
        # the codebooks and pending tokens are per-sequence, the blocks are not.
        assert aggregate < 2.5 * single
        solo.run()
        shared.run()
