"""Tests for chunked prefill: schedule shape, determinism, budget, cancel.

Chunked prefill is its own oracle: chunked output is deterministic in
``(prompt, chunk_tokens)`` but *not* bit-identical to one-shot prefill
(every forced flush changes the quantized/full-precision split deeper
layers attend to).  The suite therefore compares chunked against chunked —
cold vs cold, cold vs prefix-adopted, uncontended vs preempted/restored —
and keeps one test asserting the legacy path is untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    FinishReason,
    PooledMillionCacheFactory,
    chunk_schedule,
)

BLOCK_TOKENS = 4


@pytest.fixture()
def chunked_engine_factory(tiny_model, tiny_config, million_factory, million_config):
    """Builds a fresh chunked pooled engine (own pool) per call."""

    def build(num_blocks=256, max_batch_size=4, budget=8, chunked=True):
        pool = BlockPool.for_model(
            tiny_config,
            million_config,
            num_blocks=num_blocks,
            block_tokens=BLOCK_TOKENS,
        )
        factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        return BatchedMillionEngine(
            tiny_model,
            factory,
            max_batch_size=max_batch_size,
            chunked_prefill=chunked,
            prefill_token_budget=budget,
        )

    yield build
    tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestChunkSchedule:
    def test_example_schedule(self):
        # P=100, B=16 -> A=96; C=32 -> chunks at 32, 64, then A, then P.
        assert chunk_schedule(100, 16, 32) == (32, 64, 96, 100)

    def test_prompt_within_first_block(self):
        # A=0: the whole prompt is the residual tail, one bound only.
        assert chunk_schedule(3, 4, 8) == (3,)
        assert chunk_schedule(1, 4, 4) == (1,)

    def test_aligned_prompt_keeps_last_block_as_tail(self):
        # P a multiple of B: A = P - B, so the tail is exactly one block.
        assert chunk_schedule(16, 4, 8) == (8, 12, 16)

    def test_chunk_tokens_must_be_aligned_multiple(self):
        with pytest.raises(Exception, match="chunk_tokens"):
            chunk_schedule(100, 16, 24)  # not a multiple of block_tokens
        with pytest.raises(Exception, match="chunk_tokens"):
            chunk_schedule(100, 16, 8)  # smaller than one block

    @settings(max_examples=200, deadline=None)
    @given(
        prompt=st.integers(min_value=1, max_value=512),
        block=st.integers(min_value=1, max_value=16),
        chunks_per=st.integers(min_value=1, max_value=8),
    )
    def test_any_chunking_yields_valid_aligned_schedule(
        self, prompt, block, chunks_per
    ):
        chunk = block * chunks_per
        bounds = chunk_schedule(prompt, block, chunk)
        aligned = block * ((prompt - 1) // block)
        # Strictly increasing, ends at the prompt length.
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert bounds[-1] == prompt
        # Every bound below A is a multiple of the chunk size; A itself is
        # the penultimate bound whenever an aligned prefix exists.
        for bound in bounds[:-1]:
            assert bound == aligned or bound % chunk == 0
        if aligned > 0:
            assert bounds[-2] == aligned
        else:
            assert bounds == (prompt,)
        # The tail past A is the residual window: between 1 and B tokens.
        assert 1 <= prompt - aligned <= block


class TestChunkedConstruction:
    def test_requires_block_pool(self, tiny_model, million_factory):
        with pytest.raises(Exception, match="pool"):
            BatchedMillionEngine(
                tiny_model, million_factory, chunked_prefill=True
            )
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_budget_must_be_positive(self, chunked_engine_factory):
        with pytest.raises(Exception, match="budget"):
            chunked_engine_factory(budget=0)

    def test_default_budget_is_eight_blocks(
        self, tiny_model, tiny_config, million_factory, million_config
    ):
        pool = BlockPool.for_model(
            tiny_config, million_config, num_blocks=64, block_tokens=BLOCK_TOKENS
        )
        factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        engine = BatchedMillionEngine(tiny_model, factory, chunked_prefill=True)
        assert engine.prefill_token_budget == 8 * BLOCK_TOKENS
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_legacy_engine_never_chunks(
        self, chunked_engine_factory, calibration_tokens
    ):
        engine = chunked_engine_factory(chunked=False)
        engine.generate_batch([calibration_tokens[:40]], max_new_tokens=4)
        assert engine.prefill_chunks_total == 0
        assert engine.stats()["step_timing"]["chunked_prefill_enabled"] is False


class TestChunkedDeterminism:
    def test_cold_runs_are_identical(
        self, chunked_engine_factory, calibration_tokens
    ):
        prompt = calibration_tokens[:41]
        first = chunked_engine_factory().generate_batch([prompt], 8)[0]
        second = chunked_engine_factory().generate_batch([prompt], 8)[0]
        np.testing.assert_array_equal(first, second)

    def test_prefix_adoption_matches_cold(
        self, chunked_engine_factory, calibration_tokens
    ):
        """A warm request adopting chunk-published blocks decodes the same."""
        prompt = calibration_tokens[:41]
        cold = chunked_engine_factory().generate_batch([prompt], 8)[0]
        engine = chunked_engine_factory()
        first = engine.generate_batch([prompt], 8)[0]
        warm = engine.generate_batch([prompt], 8)[0]
        assert engine.prefill_tokens_reused > 0
        np.testing.assert_array_equal(cold, first)
        np.testing.assert_array_equal(cold, warm)

    def test_preempted_restore_matches_uncontended(
        self, chunked_engine_factory, calibration_tokens
    ):
        """Restore replays the same chunk schedule: tokens survive eviction."""
        prompts = [calibration_tokens[i : i + 60] for i in (0, 70, 140)]
        uncontended = chunked_engine_factory(num_blocks=256)
        reference = uncontended.generate_batch(prompts, max_new_tokens=12)
        assert uncontended.preemption_count == 0
        contended = chunked_engine_factory(num_blocks=48)
        outputs = contended.generate_batch(prompts, max_new_tokens=12)
        assert contended.preemption_count >= 1
        for want, got in zip(reference, outputs):
            np.testing.assert_array_equal(want, got)

    def test_batched_whale_matches_solo_chunked(
        self, chunked_engine_factory, calibration_tokens
    ):
        """Interleaving a whale with short streams never changes its tokens."""
        whale = calibration_tokens[:120]
        short = calibration_tokens[200:210]
        solo_whale = chunked_engine_factory().generate_batch([whale], 6)[0]
        solo_short = chunked_engine_factory().generate_batch([short], 6)[0]
        mixed = chunked_engine_factory(budget=8)
        short_id = mixed.add_request(short, max_new_tokens=6)
        whale_id = mixed.add_request(whale, max_new_tokens=6)
        results = mixed.run()
        np.testing.assert_array_equal(results[whale_id], solo_whale)
        np.testing.assert_array_equal(results[short_id], solo_short)


class TestBudgetInterleaving:
    def test_long_prompt_spans_steps_and_decode_continues(
        self, chunked_engine_factory, calibration_tokens
    ):
        """A whale prefills across steps while a short request keeps decoding."""
        engine = chunked_engine_factory(budget=4)
        short_id = engine.add_request(calibration_tokens[:6], max_new_tokens=16)
        engine.step()  # chunk 1 of the short prompt
        engine.step()  # tail: short finishes prefill and decodes its first token
        whale_id = engine.add_request(calibration_tokens[100:220], max_new_tokens=4)
        engine.step()
        whale = engine.state_of(whale_id)
        assert whale.prefilling  # 120-token prompt can't finish on budget 4
        assert engine.stats()["prefilling"] == 1
        assert whale.generated_ids.size == 0  # no decode while prefilling
        # The short request decoded this step despite the whale's chunk work.
        short_after_one = engine.state_of(short_id).generated_ids.size
        assert short_after_one >= 2
        steps_while_prefilling = 0
        while engine.state_of(whale_id).prefilling:
            engine.step()
            steps_while_prefilling += 1
        assert steps_while_prefilling > 5  # genuinely budget-limited
        assert engine.state_of(short_id).generated_ids.size > short_after_one
        engine.run()
        assert engine.state_of(whale_id).finish_reason is FinishReason.LENGTH

    def test_budget_counters_in_stats(
        self, chunked_engine_factory, calibration_tokens
    ):
        engine = chunked_engine_factory(budget=8)
        engine.add_request(calibration_tokens[:40], max_new_tokens=2)
        engine.step()
        timing = engine.stats()["step_timing"]
        assert timing["chunked_prefill_enabled"] is True
        assert timing["prefill_token_budget"] == 8
        assert timing["prefill_chunks_total"] >= 1
        assert timing["last_budget_utilization"] > 0.0
        engine.run()
        # The final step has no prefill work: utilization reads 0.
        assert engine.stats()["step_timing"]["last_budget_utilization"] == 0.0

    def test_minimum_chunk_overshoots_tiny_budget(
        self, chunked_engine_factory, calibration_tokens
    ):
        """Budget below one block still makes progress (utilization > 1)."""
        engine = chunked_engine_factory(budget=2)
        engine.add_request(calibration_tokens[:20], max_new_tokens=2)
        engine.step()
        assert engine.last_budget_utilization > 1.0
        results = engine.run()
        assert next(iter(results.values())).size == 2


class TestMidChunkCancel:
    def test_cancel_mid_prefill_releases_every_block(
        self, chunked_engine_factory, calibration_tokens
    ):
        engine = chunked_engine_factory(budget=4)
        request_id = engine.add_request(
            calibration_tokens[:120], max_new_tokens=4
        )
        engine.step()
        state = engine.state_of(request_id)
        assert state.prefilling  # paused mid-schedule
        pool = engine.pool
        tables = [list(cache.block_table) for cache in state.context.caches]
        held = {bid for table in tables for bid in table}
        assert held and all(pool.refcount(bid) >= 1 for bid in held)
        assert engine.cancel(request_id) is True
        assert not state.prefilling and state.context is None
        assert state.finish_reason is FinishReason.CANCELLED
        # Chunk-published blocks drop to refcount 0 (cached, evictable);
        # nothing stays pinned by the dead sequence.
        assert all(pool.refcount(bid) == 0 for bid in held)
        assert pool.available_block_count == pool.num_blocks
        assert not engine.scheduler.has_work

    def test_cancel_mid_prefill_leaves_others_running(
        self, chunked_engine_factory, calibration_tokens
    ):
        engine = chunked_engine_factory(budget=4)
        keeper = engine.add_request(calibration_tokens[:8], max_new_tokens=6)
        victim = engine.add_request(calibration_tokens[100:220], max_new_tokens=4)
        engine.step()
        assert engine.state_of(victim).prefilling
        engine.cancel(victim)
        results = engine.run()
        solo = chunked_engine_factory().generate_batch(
            [calibration_tokens[:8]], max_new_tokens=6
        )[0]
        np.testing.assert_array_equal(results[keeper], solo)
        assert results[victim].size == 0
