"""Tests for the continuous-batching serving layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MillionEngine
from repro.models import GreedySampler
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.serving import (
    BatchedMillionEngine,
    ContinuousBatchingScheduler,
    FinishReason,
    GenerationRequest,
    RequestState,
    RequestStatus,
)


@pytest.fixture()
def prompts(calibration_tokens):
    return [calibration_tokens[start : start + 12 + i] for i, start in enumerate(range(0, 100, 20))]


def _state(request_id: str) -> RequestState:
    return RequestState(
        request=GenerationRequest(
            prompt_ids=np.asarray([1, 2, 3]), max_new_tokens=4, request_id=request_id
        )
    )


class TestContinuousBatchingScheduler:
    def test_fcfs_admission_respects_batch_cap(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=2)
        states = [_state(f"r{i}") for i in range(5)]
        for state in states:
            scheduler.submit(state)
        admitted = scheduler.admit()
        assert [s.request_id for s in admitted] == ["r0", "r1"]
        assert scheduler.running_count == 2 and scheduler.queued_count == 3
        assert scheduler.admit() == []  # batch full, nothing more admitted

    def test_release_frees_slot_for_next_request(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=1)
        first, second = _state("a"), _state("b")
        scheduler.submit(first)
        scheduler.submit(second)
        scheduler.admit()
        scheduler.release(first)
        assert first.status is RequestStatus.FINISHED
        assert [s.request_id for s in scheduler.admit()] == ["b"]
        assert scheduler.finished_count == 1
        assert scheduler.has_work

    def test_duplicate_and_foreign_states_rejected(self):
        scheduler = ContinuousBatchingScheduler()
        state = _state("a")
        scheduler.submit(state)
        with pytest.raises(Exception):
            scheduler.submit(_state("a"))
        with pytest.raises(Exception):
            scheduler.release(_state("b"))

    def test_has_work_drains(self):
        scheduler = ContinuousBatchingScheduler()
        state = _state("a")
        scheduler.submit(state)
        scheduler.admit()
        scheduler.release(state)
        assert not scheduler.has_work


class TestBatchedMillionEngine:
    def test_batched_tokens_identical_to_sequential_greedy(
        self, tiny_model, million_factory, prompts
    ):
        sequential = MillionEngine(tiny_model, million_factory)
        expected = [sequential.generate(p, max_new_tokens=10) for p in prompts]
        engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=2)
        results = engine.generate_batch(prompts, max_new_tokens=10)
        for want, got in zip(expected, results):
            np.testing.assert_array_equal(want, got)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_interleaving_does_not_leak_state_across_sequences(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """The same prompt must produce the same output regardless of batch mix."""
        prompt = calibration_tokens[:16]
        alone = BatchedMillionEngine(tiny_model, million_factory).generate_batch(
            [prompt], max_new_tokens=8
        )[0]
        mixed_engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=4)
        mixed = mixed_engine.generate_batch(
            [calibration_tokens[40:80], prompt, calibration_tokens[5:45]],
            max_new_tokens=8,
        )
        np.testing.assert_array_equal(alone, mixed[1])
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_model_live_context_untouched_by_serving(
        self, tiny_model, million_factory, calibration_tokens
    ):
        tiny_model.reset_cache(million_factory)
        tiny_model.prefill(calibration_tokens[:20])
        caches_before = tiny_model.caches
        position_before = tiny_model.context_length
        engine = BatchedMillionEngine(tiny_model, million_factory)
        engine.generate_batch([calibration_tokens[30:50]], max_new_tokens=5)
        assert tiny_model.caches is caches_before
        assert tiny_model.context_length == position_before
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_step_streaming_and_finish_reasons(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=2)
        first = engine.add_request(calibration_tokens[:8], max_new_tokens=3)
        second = engine.add_request(calibration_tokens[8:16], max_new_tokens=6)
        seen_tokens: dict[str, list[int]] = {first: [], second: []}
        steps = 0
        while engine.scheduler.has_work:
            for output in engine.step():
                if output.token is not None:
                    seen_tokens[output.request_id].append(output.token)
            steps += 1
            assert steps < 20
        assert len(seen_tokens[first]) == 3
        assert len(seen_tokens[second]) == 6
        assert engine.state_of(first).finish_reason is FinishReason.LENGTH
        np.testing.assert_array_equal(
            engine.state_of(first).generated_ids, np.asarray(seen_tokens[first])
        )
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_stop_token_finishes_early(self, tiny_model, million_factory, calibration_tokens):
        sequential = MillionEngine(tiny_model, million_factory)
        reference = sequential.generate(calibration_tokens[:16], max_new_tokens=12)
        stop = int(reference[2])
        engine = BatchedMillionEngine(tiny_model, million_factory)
        request_id = engine.add_request(
            calibration_tokens[:16], max_new_tokens=12, stop_token=stop
        )
        results = engine.run()
        state = engine.state_of(request_id)
        assert state.finish_reason is FinishReason.STOP_TOKEN
        assert results[request_id][-1] == stop
        # Generation must stop at the FIRST occurrence of the stop token.
        first_occurrence = int(np.flatnonzero(reference == stop)[0])
        assert len(results[request_id]) == first_occurrence + 1
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_invalid_requests_rejected_at_submission(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """Malformed requests fail with clear ValueErrors, not deep in prefill."""
        engine = BatchedMillionEngine(tiny_model, million_factory)
        with pytest.raises(ValueError, match="max_new_tokens"):
            engine.add_request(calibration_tokens[:8], max_new_tokens=0)
        with pytest.raises(ValueError, match="empty prompt"):
            engine.add_request(np.asarray([], dtype=np.int64), max_new_tokens=4)
        with pytest.raises(ValueError, match="request_id"):
            engine.add_request(calibration_tokens[:8], max_new_tokens=4, request_id="")
        kept = engine.add_request(
            calibration_tokens[:8], max_new_tokens=2, request_id="dup"
        )
        with pytest.raises(ValueError, match="duplicate request id"):
            engine.add_request(calibration_tokens[:8], max_new_tokens=2, request_id="dup")
        # Rejections leave no trace: the one valid request still completes.
        results = engine.run()
        assert set(results) == {kept} and results[kept].shape == (2,)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_queue_backpressure(self, tiny_model, million_factory, calibration_tokens):
        from repro.serving import QueueFullError

        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=1, max_queue_size=2
        )
        first = engine.add_request(calibration_tokens[:8], max_new_tokens=2)
        second = engine.add_request(calibration_tokens[8:16], max_new_tokens=2)
        with pytest.raises(QueueFullError):
            engine.add_request(calibration_tokens[16:24], max_new_tokens=2)
        # The refused request left no state behind; its id was never taken.
        with pytest.raises(Exception):
            engine.state_of("req-0002")
        results = engine.run()
        assert set(results) == {first, second}
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_context_full_finish(self, tiny_model, million_factory, calibration_tokens):
        max_seq_len = tiny_model.config.max_seq_len
        prompt = np.resize(calibration_tokens, max_seq_len - 2)
        engine = BatchedMillionEngine(tiny_model, million_factory)
        request_id = engine.add_request(prompt, max_new_tokens=50)
        results = engine.run()
        state = engine.state_of(request_id)
        assert state.finish_reason is FinishReason.CONTEXT_FULL
        assert results[request_id].size < 50
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_more_requests_than_slots_all_complete(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=2)
        prompts = [calibration_tokens[i : i + 10] for i in range(0, 70, 10)]
        results = engine.generate_batch(prompts, max_new_tokens=4)
        assert len(results) == 7
        assert all(r.shape == (4,) for r in results)
        assert engine.finished_count == 7 and engine.running_count == 0
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_auto_ids_skip_user_supplied_ids(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        engine.add_request(calibration_tokens[:8], 2, request_id="req-0001")
        auto_ids = {engine.add_request(calibration_tokens[:8], 2) for _ in range(3)}
        assert "req-0001" not in auto_ids and len(auto_ids) == 3
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_finished_requests_release_their_caches(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """Serving a stream must not accumulate per-request KV caches."""
        engine = BatchedMillionEngine(tiny_model, million_factory)
        request_id = engine.add_request(calibration_tokens[:10], 3)
        engine.run()
        state = engine.state_of(request_id)
        assert state.context is None and state.next_logits is None
        assert state.generated_ids.shape == (3,)  # results are kept

    def test_run_returns_each_result_exactly_once(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        first = engine.add_request(calibration_tokens[:10], 2)
        assert set(engine.run()) == {first}
        second = engine.add_request(calibration_tokens[10:20], 2)
        assert set(engine.run()) == {second}  # first is not re-returned
        assert engine.run() == {}
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_oversized_prompt_rejected_at_submit(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """A bad prompt must not poison the batch; it is rejected up front."""
        engine = BatchedMillionEngine(tiny_model, million_factory)
        good = engine.add_request(calibration_tokens[:10], 2)
        too_long = np.resize(calibration_tokens, tiny_model.config.max_seq_len + 1)
        with pytest.raises(Exception, match="max_seq_len"):
            engine.add_request(too_long, 2)
        results = engine.run()  # the valid request still completes
        assert results[good].shape == (2,)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_generate_batch_preserves_foreign_results(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        loose = engine.add_request(calibration_tokens[:10], 2)
        batch = engine.generate_batch([calibration_tokens[10:20]], max_new_tokens=3)
        assert batch[0].shape == (3,)
        later = engine.run()  # the earlier request is still claimable
        assert set(later) == {loose} and later[loose].shape == (2,)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_evict_finished_bounds_history(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        request_id = engine.add_request(calibration_tokens[:10], 2)
        engine.run()
        assert engine.finished_count == 1
        assert engine.evict_finished() == 1
        assert engine.finished_count == 0
        with pytest.raises(Exception):
            engine.state_of(request_id)
        # The freed id space is reusable.
        engine.add_request(calibration_tokens[:10], 1, request_id=request_id)
        engine.run()
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_explicit_sampler_and_memory_accounting(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=2)
        engine.add_request(
            calibration_tokens[:10], max_new_tokens=64, sampler=GreedySampler()
        )
        engine.add_request(calibration_tokens[10:20], max_new_tokens=64)
        engine.step()
        assert engine.running_count == 2
        assert engine.active_cache_memory_bytes() > 0.0
        engine.run()
        assert engine.active_cache_memory_bytes() == 0.0
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_unclaimed_results_bounded_with_warning(
        self, tiny_model, million_factory, calibration_tokens, caplog
    ):
        """A client that never calls run() must not leak one array per request."""
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_unclaimed_results=2
        )
        ids = [
            engine.add_request(calibration_tokens[i : i + 8], 1) for i in (0, 10, 20)
        ]
        with caplog.at_level("WARNING", logger="repro.serving"):
            while engine.scheduler.has_work:
                engine.step()
        assert any("unclaimed result" in r.message for r in caplog.records)
        results = engine.run()
        assert ids[0] not in results  # the oldest was dropped at the cap
        assert set(results) == set(ids[1:])
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_stats_without_pool(self, tiny_model, million_factory, calibration_tokens):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        engine.add_request(calibration_tokens[:10], max_new_tokens=4)
        engine.step()
        stats = engine.stats()
        assert stats["running"] == 1 and stats["pool"] is None
        assert stats["preemptions"] == 0
        assert stats["active_cache_memory_bytes"] > 0.0
        engine.run()
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_cancel_without_pool(self, tiny_model, million_factory, calibration_tokens):
        """cancel() is independent of block-pool mode."""
        engine = BatchedMillionEngine(tiny_model, million_factory, max_batch_size=1)
        first = engine.add_request(calibration_tokens[:10], max_new_tokens=3)
        second = engine.add_request(calibration_tokens[10:20], max_new_tokens=3)
        engine.step()
        assert engine.cancel(second) is True
        assert engine.state_of(second).finish_reason is FinishReason.CANCELLED
        results = engine.run()
        assert results[first].shape == (3,) and results[second].size == 0
        tiny_model.reset_cache(FullPrecisionCacheFactory())
