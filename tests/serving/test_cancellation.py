"""Cancellation edge cases: listener markers, prefill-time cancels, refcounts.

Complements the basic cancel paths in ``test_block_pool.py`` with the edges
the async gateway leans on: the CANCELLED finish marker emitted through the
incremental output hook, cancels that land before a request was ever
admitted (no pool state may be created or leaked), cancels right after
prefill, and cancel of a preempted sequence awaiting restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    FinishReason,
    PooledMillionCacheFactory,
    RequestStatus,
)

BLOCK_TOKENS = 4


@pytest.fixture()
def pooled_engine_factory(tiny_model, tiny_config, million_factory, million_config):
    def build(num_blocks=256, max_batch_size=4):
        pool = BlockPool.for_model(
            tiny_config, million_config, num_blocks=num_blocks, block_tokens=BLOCK_TOKENS
        )
        factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        return BatchedMillionEngine(tiny_model, factory, max_batch_size=max_batch_size)

    yield build
    tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestOutputListener:
    def test_tokens_and_finish_stream_through_listener(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """The subscription hook sees every token as it is decoded, in order."""
        engine = BatchedMillionEngine(tiny_model, million_factory)
        seen = []
        engine.add_output_listener(seen.append)
        request_id = engine.add_request(calibration_tokens[:10], max_new_tokens=4)
        results = engine.run()
        tokens = [o.token for o in seen if o.token is not None]
        assert tokens == results[request_id].tolist()
        assert seen[-1].finished and seen[-1].finish_reason is FinishReason.LENGTH
        engine.remove_output_listener(seen.append)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_cancel_emits_cancelled_marker(
        self, tiny_model, million_factory, calibration_tokens
    ):
        """cancel() happens outside step(); subscribers still get a finish."""
        engine = BatchedMillionEngine(tiny_model, million_factory)
        seen = []
        engine.add_output_listener(seen.append)
        request_id = engine.add_request(calibration_tokens[:10], max_new_tokens=50)
        engine.step()
        engine.cancel(request_id)
        final = seen[-1]
        assert final.request_id == request_id
        assert final.finished and final.token is None
        assert final.finish_reason is FinishReason.CANCELLED
        tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestCancelBeforeAdmission:
    def test_queued_request_never_touches_the_pool(
        self, pooled_engine_factory, calibration_tokens
    ):
        """A never-admitted request must leave zero trace in the block pool."""
        # Pool sized so the 40-token request is refused by the admission
        # gate (memoizing its prefill plan) while a batch slot stays free.
        engine = pooled_engine_factory(num_blocks=20, max_batch_size=2)
        first = engine.add_request(calibration_tokens[:10], max_new_tokens=4)
        second = engine.add_request(calibration_tokens[20:60], max_new_tokens=4)
        engine.step()  # first admitted; the admission gate probed second's plan
        pool = engine.pool
        used_before = pool.used_block_count
        allocations_before = pool.allocations
        assert engine.state_of(second).prefill_plan is not None  # gate memoized it
        assert engine.cancel(second) is True
        state = engine.state_of(second)
        assert state.status is RequestStatus.FINISHED
        assert state.prefill_plan is None and state.block_hashes == []
        assert pool.used_block_count == used_before
        assert pool.allocations == allocations_before
        results = engine.run()
        assert results[second].size == 0 and results[first].shape == (4,)

    def test_cancel_preempted_request_frees_cleanly(
        self, pooled_engine_factory, calibration_tokens
    ):
        """Preempted sequences hold no blocks; cancelling one must not double-free."""
        engine = pooled_engine_factory(num_blocks=26, max_batch_size=2)
        first = engine.add_request(calibration_tokens[:20], max_new_tokens=16)
        second = engine.add_request(calibration_tokens[25:45], max_new_tokens=16)
        preempted_id = None
        for _ in range(200):
            engine.step()
            if engine.state_of(second).status is RequestStatus.PREEMPTED:
                preempted_id = second
                break
            if engine.state_of(first).status is RequestStatus.PREEMPTED:
                preempted_id = first
                break
        assert preempted_id is not None, "expected memory pressure to preempt"
        assert engine.cancel(preempted_id) is True
        survivor = first if preempted_id == second else second
        results = engine.run()
        assert results[survivor].shape == (16,)
        assert results[preempted_id].size > 0  # tokens generated before eviction
        # Every block is reclaimable afterwards: nothing leaked, nothing
        # double-freed along preempt -> cancel -> drain.
        assert engine.pool.available_block_count == engine.pool.num_blocks


class TestCancelAfterPrefill:
    def test_cancel_right_after_prefill_keeps_published_prefix(
        self, pooled_engine_factory, calibration_tokens
    ):
        """Cancel during a request's first step: its private blocks return to
        the pool but the published prefix stays cached for the next request."""
        engine = pooled_engine_factory()
        prompt = calibration_tokens[:21]
        request_id = engine.add_request(prompt, max_new_tokens=50)
        engine.step()  # prefill + first decode only
        pool = engine.pool
        assert engine.cancel(request_id) is True
        # All references dropped...
        assert all(pool.refcount(b) == 0 for b in range(pool.num_blocks))
        # ...but the prefix groups survive as cached, adoptable state.
        cached_before = pool.cached_group_count
        assert cached_before > 0
        adoptions_before = pool.adoptions
        # An identical request adopts the cancelled request's published work.
        retry = engine.add_request(prompt, max_new_tokens=4, request_id="retry")
        results = engine.run()
        assert pool.adoptions > adoptions_before
        assert engine.prefill_tokens_reused > 0
        # Shared-vs-cold bit-identity: the retry matches a cold pooled run.
        reference_engine = pooled_engine_factory()
        reference_id = reference_engine.add_request(prompt, max_new_tokens=4)
        np.testing.assert_array_equal(
            results[retry], reference_engine.run()[reference_id]
        )
