"""Priority-class admission, preemption ordering and SLO backpressure.

The starvation/ordering guarantees here are the contract the
``serving.slo_load`` benchmark and the gateway's 429 behavior build on, so
they are tested property-style where the input space matters (arbitrary
submission interleavings, arbitrary admission orders) and example-style
where a single scenario pins the rule.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    ContinuousBatchingScheduler,
    GenerationRequest,
    PooledMillionCacheFactory,
    QueueFullError,
    RequestState,
    RequestStatus,
    SloCapacityError,
    SloPolicy,
)
from repro.serving.request import PRIORITIES, priority_rank

BLOCK_TOKENS = 4


def _state(request_id: str, priority: str = "interactive") -> RequestState:
    return RequestState(
        request=GenerationRequest(
            prompt_ids=np.asarray([1, 2, 3]),
            max_new_tokens=4,
            request_id=request_id,
            priority=priority,
        )
    )


class TestPriorityAdmission:
    def test_interactive_admits_ahead_of_queued_best_effort(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=4)
        for rid, prio in [
            ("b0", "best_effort"),
            ("b1", "best_effort"),
            ("i0", "interactive"),
        ]:
            scheduler.submit(_state(rid, prio))
        admitted = [s.request_id for s in scheduler.admit()]
        assert admitted == ["i0", "b0", "b1"]

    def test_within_class_is_arrival_order(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=8)
        for i in range(4):
            scheduler.submit(_state(f"i{i}", "interactive"))
        assert [s.request_id for s in scheduler.admit()] == [
            "i0", "i1", "i2", "i3"
        ]

    def test_fifo_mode_ignores_priority(self):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=4, priority_aware=False
        )
        for rid, prio in [
            ("b0", "best_effort"),
            ("i0", "interactive"),
            ("b1", "best_effort"),
        ]:
            scheduler.submit(_state(rid, prio))
        assert [s.request_id for s in scheduler.admit()] == ["b0", "i0", "b1"]

    def test_refused_interactive_head_blocks_best_effort(self):
        """Head-of-line in class order: the gate refusing the interactive
        head must not let queued best-effort work claim its memory."""
        scheduler = ContinuousBatchingScheduler(max_batch_size=4)
        scheduler.submit(_state("i0", "interactive"))
        scheduler.submit(_state("b0", "best_effort"))
        refused = scheduler.admit_next(gate=lambda s: s.priority != "interactive")
        assert refused is None
        assert scheduler.queued_count == 2

    @settings(deadline=None, max_examples=60)
    @given(
        priorities=st.lists(st.sampled_from(PRIORITIES), min_size=1, max_size=20),
        admit_gaps=st.lists(st.integers(0, 3), min_size=1, max_size=20),
    )
    def test_best_effort_never_admitted_past_queued_interactive(
        self, priorities, admit_gaps
    ):
        """Under any interleaving of submissions and single admissions, a
        best-effort request is never admitted while an interactive one is
        queued — the no-priority-inversion half of the starvation story."""
        scheduler = ContinuousBatchingScheduler(max_batch_size=1000)
        pending = [
            _state(f"r{i}", priority) for i, priority in enumerate(priorities)
        ]
        gaps = iter(admit_gaps)
        while pending or scheduler.queued_count:
            for _ in range(next(gaps, 1)):
                if pending:
                    scheduler.submit(pending.pop(0))
            state = scheduler.admit_next()
            if state is None:
                if pending:
                    continue
                break
            queued = scheduler.queued_count_by_class()
            for label in PRIORITIES:
                if priority_rank(label) < priority_rank(state.priority):
                    assert queued[label] == 0, (
                        f"admitted {state.priority} past queued {label}"
                    )


class TestPreemptionOrdering:
    def test_victims_lowest_class_then_youngest(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=8)
        for rid, prio in [
            ("i0", "interactive"),
            ("b0", "best_effort"),
            ("i1", "interactive"),
            ("b1", "best_effort"),
        ]:
            scheduler.submit(_state(rid, prio))
        scheduler.admit()
        victims = [s.request_id for s in scheduler.preemption_victims()]
        assert victims == ["b1", "b0", "i1", "i0"]

    def test_fifo_mode_victims_youngest_first(self):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=8, priority_aware=False
        )
        for rid in ["a", "b", "c"]:
            scheduler.submit(_state(rid))
        scheduler.admit()
        assert [s.request_id for s in scheduler.preemption_victims()] == [
            "c", "b", "a"
        ]

    @settings(deadline=None, max_examples=60)
    @given(
        priorities=st.lists(st.sampled_from(PRIORITIES), min_size=1, max_size=12)
    )
    def test_first_victim_is_youngest_of_lowest_present_class(self, priorities):
        scheduler = ContinuousBatchingScheduler(max_batch_size=100)
        for i, priority in enumerate(priorities):
            scheduler.submit(_state(f"r{i}", priority))
        scheduler.admit()
        first = next(scheduler.preemption_victims())
        lowest = max(
            (s.priority for s in scheduler.running), key=priority_rank
        )
        in_lowest = [s for s in scheduler.running if s.priority == lowest]
        assert first is in_lowest[-1]  # running is admission-ordered

    def test_preempted_reenters_front_of_own_class(self):
        scheduler = ContinuousBatchingScheduler(max_batch_size=2)
        scheduler.submit(_state("b0", "best_effort"))
        scheduler.submit(_state("i0", "interactive"))
        scheduler.admit()
        scheduler.submit(_state("b1", "best_effort"))
        victim = next(scheduler.preemption_victims())
        assert victim.request_id == "b0"
        scheduler.preempt(victim)
        assert victim.status is RequestStatus.PREEMPTED
        # b0 must be restored before the newly arrived b1 ...
        queue = [s.request_id for s in scheduler._queues["best_effort"]]
        assert queue == ["b0", "b1"]
        # ... but never past queued interactive work.
        scheduler.submit(_state("i1", "interactive"))
        assert scheduler.admit_next().request_id == "i1"

    def test_preempt_bypasses_hard_cap_and_slo(self):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=2,
            max_queue_size=1,
            slo_policy=SloPolicy(interactive_slo_s=0.001),
        )
        scheduler.submit(_state("i0"))
        scheduler.admit()
        scheduler.submit(_state("q0"))  # fills the queue to the cap
        with pytest.raises(QueueFullError):
            scheduler.submit(_state("q1"))
        scheduler.preempt(scheduler.running[0])  # must not raise
        assert scheduler.queued_count == 2


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr("repro.serving.scheduler.time.perf_counter", clock)
    return clock


class TestSloBackpressure:
    def _drain_rate(self, scheduler, clock, interval_s: float) -> None:
        """Establish an EWMA admission interval of ``interval_s``."""
        for i in range(3):
            scheduler.submit(_state(f"warm{i}"))
            scheduler.admit_next()
            clock.now += interval_s

    def test_cold_scheduler_never_rejects(self):
        scheduler = ContinuousBatchingScheduler(
            slo_policy=SloPolicy(interactive_slo_s=0.0001)
        )
        for i in range(50):
            scheduler.submit(_state(f"r{i}"))  # no admissions yet: all accepted
        assert scheduler.projected_queue_wait_s("interactive") == 0.0

    def test_rejects_past_slo_with_retry_hint(self, clock):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=3, slo_policy=SloPolicy(interactive_slo_s=2.0)
        )
        self._drain_rate(scheduler, clock, interval_s=1.0)
        for i in range(3):
            scheduler.submit(_state(f"q{i}"))  # projected 0/1/2 × 1.0s: accepted
        with pytest.raises(SloCapacityError) as info:
            scheduler.submit(_state("q3"))  # 3 queued ahead × 1.0s > 2.0s SLO
        error = info.value
        assert error.projected_wait_s == pytest.approx(3.0)
        assert error.retry_after_s == 1  # ceil(3.0 - 2.0)
        assert scheduler.slo_rejections["interactive"] == 1
        assert isinstance(error, QueueFullError)

    def test_class_without_slo_queues_instead_of_shedding(self, clock):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=3, slo_policy=SloPolicy(interactive_slo_s=2.0)
        )
        self._drain_rate(scheduler, clock, interval_s=1.0)
        for i in range(20):
            scheduler.submit(_state(f"b{i}", "best_effort"))  # must not raise
        assert scheduler.queued_count == 20

    def test_best_effort_backlog_does_not_reject_interactive(self, clock):
        """Lower-class queue depth must not count against an interactive
        submission's projected wait — it will be admitted past them."""
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=3, slo_policy=SloPolicy(interactive_slo_s=2.0)
        )
        self._drain_rate(scheduler, clock, interval_s=1.0)
        for i in range(20):
            scheduler.submit(_state(f"b{i}", "best_effort"))
        scheduler.submit(_state("i0"))  # projected 1 * 1.0s <= 2.0s SLO
        assert scheduler.queued_count == 21

    def test_hard_cap_still_raises_plain_queue_full(self, clock):
        scheduler = ContinuousBatchingScheduler(
            max_batch_size=1,
            max_queue_size=1,
            slo_policy=SloPolicy(interactive_slo_s=1000.0),
        )
        scheduler.submit(_state("r0"))
        scheduler.admit()
        scheduler.submit(_state("r1"))
        with pytest.raises(QueueFullError) as info:
            scheduler.submit(_state("r2"))
        assert not isinstance(info.value, SloCapacityError)


class TestEngineUnderPriorityChurn:
    @pytest.fixture()
    def engine_factory(self, tiny_model, tiny_config, million_factory, million_config):
        def build(num_blocks, priority_aware=True, max_batch_size=4):
            pool = BlockPool.for_model(
                tiny_config,
                million_config,
                num_blocks=num_blocks,
                block_tokens=BLOCK_TOKENS,
            )
            factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
            return BatchedMillionEngine(
                tiny_model,
                factory,
                max_batch_size=max_batch_size,
                priority_aware=priority_aware,
            )

        yield build
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def _submit_mixed(self, engine, calibration_tokens):
        ids = {}
        for i in range(6):
            priority = "best_effort" if i % 2 else "interactive"
            prompt = calibration_tokens[i * 8 : i * 8 + 12 + 4 * i]
            ids[engine.add_request(
                prompt, max_new_tokens=8, priority=priority, tenant=f"t{i % 2}"
            )] = prompt
        return ids

    def test_restore_preserves_token_identity_under_churn(
        self, engine_factory, calibration_tokens
    ):
        """Preempt/restore under a contended pool must not change a single
        token relative to an uncontended run of the same requests."""
        spacious = engine_factory(num_blocks=256)
        want = spacious.run()  # no work yet; just proves run() handles empty
        assert want == {}
        ids = self._submit_mixed(spacious, calibration_tokens)
        want = spacious.run()

        contended = engine_factory(num_blocks=24)
        ids2 = self._submit_mixed(contended, calibration_tokens)
        got = contended.run()

        assert contended.preemption_count > 0, (
            "pool sized too generously; churn never happened"
        )
        for (rid_a, prompt_a), (rid_b, prompt_b) in zip(
            sorted(ids.items()), sorted(ids2.items())
        ):
            np.testing.assert_array_equal(prompt_a, prompt_b)
            np.testing.assert_array_equal(want[rid_a], got[rid_b])

    def test_preemption_prefers_best_effort(self, engine_factory, calibration_tokens):
        engine = engine_factory(num_blocks=24)
        self._submit_mixed(engine, calibration_tokens)
        engine.run()
        stats = engine.priority_stats()
        assert engine.preemption_count > 0
        assert (
            stats["best_effort"]["preemptions"]
            >= stats["interactive"]["preemptions"]
        )

    def test_priority_stats_shape(self, engine_factory):
        engine = engine_factory(num_blocks=32)
        stats = engine.priority_stats()
        assert set(stats) == set(PRIORITIES)
        for label in PRIORITIES:
            assert set(stats[label]) == {
                "queued", "running", "preemptions", "slo_rejections"
            }
