"""Tests for policy-driven serving: quality tiers, heterogeneous pools and
the batch-size-dependent fused/sequential decode switch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import train_million_quantizers
from repro.core.million_cache import MillionCacheFactory
from repro.quant.policy import QuantPolicy, derive_policy, million_variant
from repro.quant.policy_cache import PolicyCacheFactory
from repro.serving import BatchedMillionEngine, GenerationRequest
from repro.serving.memory import (
    BlockPool,
    PooledMillionCacheFactory,
    PooledPolicyCacheFactory,
    UnitLayout,
)


@pytest.fixture(scope="module")
def factory_bank(tiny_config, kv_samples):
    """Unpooled MILLION factories at 2/4/8 equivalent bits, shared quantizers."""
    bank = {}
    for bits in (2, 4, 8):
        variant = million_variant(
            tiny_config.head_dim, bits, kmeans_iters=3, calibration_samples=768
        )
        bank[bits] = MillionCacheFactory(
            train_million_quantizers(kv_samples, variant), variant
        )
    return bank


@pytest.fixture(scope="module")
def mixed_policy(tiny_config, kv_samples):
    from repro.core.calibration import measure_sensitivity

    sensitivity = measure_sensitivity(kv_samples, kmeans_iters=2, max_tokens=512)
    budget = 1.5 * QuantPolicy.uniform(tiny_config, "million", 4).bytes_per_token()
    return derive_policy(tiny_config, sensitivity, budget, schemes=("million",))


def _drain(engine, request_ids):
    tokens = {rid: [] for rid in request_ids}
    finished = set()
    while finished != set(request_ids):
        for out in engine.step():
            if out.request_id in tokens and out.token is not None:
                tokens[out.request_id].append(out.token)
            if out.finished:
                finished.add(out.request_id)
    return tokens


class TestUnitLayoutPool:
    def test_uniform_layouts_match_legacy_pool(self, tiny_config, million_config):
        legacy = BlockPool.for_model(
            tiny_config, million_config, num_blocks=8, block_tokens=4
        )
        assert not legacy.heterogeneous
        assert legacy.unit_bytes_per_block(0) == legacy.bytes_per_block

    def test_heterogeneous_pack_unpack_round_trip(self):
        layouts = [
            UnitLayout(kv_heads=2, key_subspaces=8, value_subspaces=8),
            UnitLayout(kv_heads=2, key_subspaces=16, value_subspaces=16),
        ]
        pool = BlockPool(
            num_blocks=4, block_tokens=4, n_layers=2, unit_layouts=layouts
        )
        assert pool.heterogeneous
        rng = np.random.default_rng(0)
        written = {}
        for unit, layout in enumerate(layouts):
            block = pool.allocate_block()
            codes_k = rng.integers(
                0, 255, size=(4, layout.kv_heads, layout.key_subspaces), dtype=np.uint8
            )
            codes_v = rng.integers(
                0, 255, size=(4, layout.kv_heads, layout.value_subspaces), dtype=np.uint8
            )
            pool.write_block(block, codes_k, codes_v, unit=unit)
            written[block] = (unit, codes_k, codes_v)
        for block, (unit, codes_k, codes_v) in written.items():
            assert pool.block_unit(block) == unit
            np.testing.assert_array_equal(pool.key_codes(block), codes_k)
            np.testing.assert_array_equal(pool.value_codes(block), codes_v)

    def test_heterogeneous_write_requires_unit(self):
        layouts = [
            UnitLayout(kv_heads=1, key_subspaces=4, value_subspaces=4),
            UnitLayout(kv_heads=1, key_subspaces=8, value_subspaces=8),
        ]
        pool = BlockPool(
            num_blocks=2, block_tokens=2, n_layers=2, unit_layouts=layouts
        )
        block = pool.allocate_block()
        codes = np.zeros((2, 1, 4), dtype=np.uint8)
        with pytest.raises(Exception):
            pool.write_block(block, codes, codes)

    def test_for_policy_unit_accounting(self, tiny_config, mixed_policy):
        pool = BlockPool.for_policy(
            tiny_config, mixed_policy, num_blocks=8, block_tokens=4
        )
        units = sum(
            len(mixed_policy.head_groups(layer))
            for layer in range(tiny_config.n_layers)
        )
        assert pool.n_units == units
        total = sum(pool.unit_bytes_per_block(u) for u in range(units))
        assert total == pytest.approx(4 * mixed_policy.bytes_per_token())


class TestQualityTiers:
    def _engine(self, tiny_model, tiny_config, factory_bank, mixed_policy, pooled):
        default_factory = factory_bank[4]
        if pooled:
            pool = BlockPool.for_model(
                tiny_config, default_factory.million_config, num_blocks=64, block_tokens=4
            )
            default = PooledMillionCacheFactory.from_factory(default_factory, pool)
            tier_pool = BlockPool.for_policy(
                tiny_config, mixed_policy, num_blocks=64, block_tokens=4
            )
            quality = PooledPolicyCacheFactory(
                mixed_policy, tiny_config, factory_bank, tier_pool
            )
        else:
            default = default_factory
            quality = PolicyCacheFactory(
                mixed_policy, tiny_config, million_factories=factory_bank
            )
        return BatchedMillionEngine(
            tiny_model,
            default,
            max_batch_size=4,
            tier_factories={"quality": quality, "balanced": default},
        )

    @pytest.mark.parametrize("pooled", [False, True])
    def test_tier_routing_and_stats(
        self, tiny_model, tiny_config, factory_bank, mixed_policy, pooled
    ):
        engine = self._engine(
            tiny_model, tiny_config, factory_bank, mixed_policy, pooled
        )
        prompt = np.arange(1, 17, dtype=np.int64) % tiny_config.vocab_size
        rids = [
            engine.add_request(prompt, max_new_tokens=6, tier=tier)
            for tier in (None, "quality", "balanced")
        ]
        tokens = _drain(engine, rids)
        assert all(len(t) == 6 for t in tokens.values())
        tiers = engine.stats()["tiers"]
        assert tiers["default"]["requests_total"] == 1
        assert tiers["quality"]["requests_total"] == 1
        assert tiers["balanced"]["requests_total"] == 1
        assert tiers["quality"]["policy_bytes_per_token"] == pytest.approx(
            mixed_policy.bytes_per_token()
        )

    def test_balanced_tier_token_identical_to_default(
        self, tiny_model, tiny_config, factory_bank, mixed_policy
    ):
        engine = self._engine(
            tiny_model, tiny_config, factory_bank, mixed_policy, pooled=True
        )
        prompt = np.arange(3, 27, dtype=np.int64) % tiny_config.vocab_size
        rid_default = engine.add_request(prompt, max_new_tokens=8)
        tokens_default = _drain(engine, [rid_default])[rid_default]
        rid_balanced = engine.add_request(prompt, max_new_tokens=8, tier="balanced")
        tokens_balanced = _drain(engine, [rid_balanced])[rid_balanced]
        assert tokens_default == tokens_balanced

    def test_unknown_tier_rejected_at_submission(
        self, tiny_model, tiny_config, factory_bank, mixed_policy
    ):
        engine = self._engine(
            tiny_model, tiny_config, factory_bank, mixed_policy, pooled=False
        )
        with pytest.raises(ValueError, match="unknown tier"):
            engine.add_request(np.asarray([1, 2, 3]), max_new_tokens=2, tier="turbo")

    def test_tier_without_registry_rejected(self, tiny_model, factory_bank):
        engine = BatchedMillionEngine(tiny_model, factory_bank[4], max_batch_size=2)
        with pytest.raises(ValueError, match="unknown tier"):
            engine.add_request(np.asarray([1, 2, 3]), max_new_tokens=2, tier="quality")


class TestFusedMinBatch:
    @pytest.mark.parametrize("fused_min_batch", [1, 2, 4])
    def test_tokens_identical_across_switch_points(
        self, tiny_model, tiny_config, million_factory, fused_min_batch
    ):
        prompts = [
            (np.arange(1, 13 + 3 * i, dtype=np.int64) % tiny_config.vocab_size)
            for i in range(3)
        ]
        def run(threshold):
            engine = BatchedMillionEngine(
                tiny_model,
                million_factory,
                max_batch_size=4,
                fused_min_batch=threshold,
            )
            rids = [
                engine.add_request(p, max_new_tokens=8) for p in prompts
            ]
            return _drain(engine, rids)

        baseline = run(10_000)  # always sequential
        assert run(fused_min_batch) == baseline

    def test_single_sequence_uses_sequential_path(
        self, tiny_model, million_factory
    ):
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=4, fused_min_batch=2
        )
        rid = engine.add_request(np.asarray([1, 2, 3, 4]), max_new_tokens=4)
        _drain(engine, [rid])
        timing = engine.stats()["step_timing"]
        assert timing["last_fused_batch_size"] <= 1
