"""Load-harness unit tests: schedule synthesis and report aggregation.

The HTTP replay path is covered end to end by ``python -m repro.loadgen
--smoke`` in CI and by the ``serving.slo_load`` benchmark; here we pin the
deterministic parts — same spec must mean same schedule, and the report
arithmetic the benchmark gates on must be exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen import (
    LoadReport,
    RequestOutcome,
    ScheduledRequest,
    WorkloadSpec,
    synthesize,
)
from repro.loadgen.__main__ import _smoke_check
from repro.serving.request import PRIORITIES

SPEC = WorkloadSpec(requests=48, seed=13)


class TestWorkloadSynthesis:
    def test_same_seed_same_schedule(self):
        a = synthesize(SPEC, vocab_size=128)
        b = synthesize(SPEC, vocab_size=128)
        assert len(a) == len(b) == SPEC.requests
        for x, y in zip(a, b):
            assert (x.at_s, x.max_tokens, x.priority, x.tenant) == (
                y.at_s, y.max_tokens, y.priority, y.tenant
            )
            np.testing.assert_array_equal(x.prompt_ids, y.prompt_ids)

    def test_different_seed_different_schedule(self):
        a = synthesize(SPEC, vocab_size=128)
        b = synthesize(WorkloadSpec(requests=48, seed=14), vocab_size=128)
        assert any(x.at_s != y.at_s for x, y in zip(a, b))

    def test_arrivals_strictly_increasing(self):
        times = [r.at_s for r in synthesize(SPEC, vocab_size=128)]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0

    def test_shared_prefixes_identical_within_group(self):
        schedule = synthesize(SPEC, vocab_size=128)
        by_group: dict[int, ScheduledRequest] = {}
        for request in schedule:
            first = by_group.setdefault(request.prefix_group, request)
            np.testing.assert_array_equal(
                request.prompt_ids[: SPEC.prefix_tokens],
                first.prompt_ids[: SPEC.prefix_tokens],
            )

    def test_both_classes_present_with_class_length_mix(self):
        schedule = synthesize(SPEC, vocab_size=128)
        by_class = {label: [] for label in PRIORITIES}
        for request in schedule:
            by_class[request.priority].append(request)
        assert all(by_class.values())
        for request in by_class["interactive"]:
            lo, hi = SPEC.interactive_output_tokens
            assert lo <= request.max_tokens <= hi
        for request in by_class["best_effort"]:
            lo, hi = SPEC.best_effort_output_tokens
            assert lo <= request.max_tokens <= hi

    def test_tenants_pinned_to_one_class(self):
        tenant_class: dict[str, str] = {}
        for request in synthesize(SPEC, vocab_size=128):
            assert tenant_class.setdefault(request.tenant, request.priority) == (
                request.priority
            )

    def test_max_seq_len_clips_prompt_plus_output(self):
        for request in synthesize(SPEC, vocab_size=128, max_seq_len=64):
            assert len(request.prompt_ids) + request.max_tokens <= 64

    def test_prompt_ids_within_vocab(self):
        for request in synthesize(SPEC, vocab_size=32):
            assert int(request.prompt_ids.max()) < 32
            assert int(request.prompt_ids.min()) >= 0

    def test_invalid_specs_rejected(self):
        with pytest.raises(Exception):
            WorkloadSpec(requests=0)
        with pytest.raises(Exception):
            WorkloadSpec(base_rate_rps=8.0, burst_rate_rps=4.0)
        with pytest.raises(Exception):
            WorkloadSpec(burst_every_s=1.0, burst_duration_s=2.0)
        with pytest.raises(Exception):
            synthesize(WorkloadSpec(requests=1), vocab_size=128, max_seq_len=4)


def _outcome(index, priority, tenant, status=200, ttft=0.1, gaps=(), tokens=3):
    return RequestOutcome(
        index=index,
        priority=priority,
        tenant=tenant,
        prefix_group=0,
        status=status,
        ttft_s=ttft if status == 200 else None,
        itl_s=list(gaps),
        tokens=tokens if status == 200 else 0,
        finish_reason="length" if status == 200 else None,
    )


class TestLoadReport:
    def test_dispositions_and_quantiles(self):
        outcomes = [
            _outcome(0, "interactive", "t0", ttft=0.010, gaps=[0.002, 0.004]),
            _outcome(1, "interactive", "t0", ttft=0.030),
            _outcome(2, "interactive", "t1", status=429),
            _outcome(3, "best_effort", "t2", ttft=0.200, tokens=9),
            _outcome(4, "best_effort", "t2", status=500),
        ]
        report = LoadReport.from_outcomes(outcomes, duration_s=2.0)
        summary = report.summary()
        interactive = summary["classes"]["interactive"]
        best_effort = summary["classes"]["best_effort"]
        assert interactive["sent"] == 3
        assert interactive["completed"] == 2
        assert interactive["rejected"] == 1
        assert best_effort == {
            **best_effort, "sent": 2, "completed": 1, "errors": 1, "tokens": 9
        }
        assert summary["sent"] == 5 and summary["completed"] == 3
        # Quantiles come from the shared bucketed histogram: the estimate
        # must bracket the true value even if it lands on a bucket edge.
        assert 0.0 < interactive["ttft_p50_s"] <= 0.05
        assert best_effort["itl_p50_s"] is None  # no gaps observed
        assert set(summary["tenants"]) == {"t0", "t1", "t2"}
        assert summary["tenants"]["t1"]["rejected"] == 1

    def test_classes_always_present(self):
        report = LoadReport.from_outcomes([], duration_s=1.0)
        assert set(report.summary()["classes"]) == set(PRIORITIES)

    def test_render_mentions_every_class_and_tenant(self):
        outcomes = [
            _outcome(0, "interactive", "alpha"),
            _outcome(1, "best_effort", "beta"),
        ]
        text = LoadReport.from_outcomes(outcomes, duration_s=1.0).render()
        for needle in ("interactive", "best_effort", "alpha", "beta", "ttft p99"):
            assert needle in text


class TestSmokeCheck:
    def _report(self, outcomes):
        return LoadReport.from_outcomes(outcomes, duration_s=1.0)

    def test_healthy_report_passes(self):
        report = self._report(
            [_outcome(0, "interactive", "t0"), _outcome(1, "best_effort", "t1")]
        )
        assert _smoke_check(report) is None

    def test_missing_class_fails(self):
        report = self._report([_outcome(0, "interactive", "t0")])
        assert "best_effort" in _smoke_check(report)

    def test_all_errors_fail(self):
        report = self._report(
            [
                _outcome(0, "interactive", "t0", status=500),
                _outcome(1, "best_effort", "t1", status=500),
            ]
        )
        assert _smoke_check(report) is not None
