"""Fused cross-request batched decode: bit-identity, arena reuse, timing.

The hard correctness bar of the fused decode path is that it produces
*bit-identical* token streams to the sequential per-sequence loop
(``fused_decode=False``), for every batch composition: mixed lengths, mixed
samplers, preemption and restore, cancellation mid-batch, and pooled
prefix-shared caches.  These tests sweep both engines over the same
workloads and require exact equality, plus the row-invariance properties of
the underlying kernels that make the identity hold by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MillionConfig, calibrate_million
from repro.core.million_cache import MillionCacheFactory
from repro.core.pq import ProductQuantizer
from repro.gateway.metrics import GatewayMetrics, render_prometheus
from repro.models import TemperatureSampler
from repro.models.tensor_ops import paired_rows_matmul
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)


def _run_engine(
    model,
    factory,
    prompts,
    fused,
    max_new_tokens=12,
    max_batch_size=8,
    stop_token=None,
    sampler=None,
    seed=None,
):
    engine = BatchedMillionEngine(
        model, factory, max_batch_size=max_batch_size, fused_decode=fused
    )
    ids = [
        engine.add_request(
            p, max_new_tokens, stop_token=stop_token, sampler=sampler, seed=seed
        )
        for p in prompts
    ]
    results = engine.run()
    return [results[i] for i in ids], engine


def _window_factory(million_factory, million_config, window):
    """Same trained quantizers, different residual window — no recalibration."""
    return MillionCacheFactory(
        million_factory.quantizers, million_config.with_updates(recent_window=window)
    )


class TestKernelRowInvariance:
    """The properties that make fused == sequential hold by construction."""

    def test_paired_matmul_rows_independent_of_batch(self):
        rng = np.random.default_rng(0)
        for k, n in ((64, 256), (256, 129), (31, 7)):
            x = rng.standard_normal((9, k)).astype(np.float32)
            w = rng.standard_normal((k, n)).astype(np.float32)
            full = paired_rows_matmul(x, w)
            for i in range(x.shape[0]):
                np.testing.assert_array_equal(
                    full[i], paired_rows_matmul(x[i : i + 1], w)[0]
                )
            # Transposed (lm-head style) weights too.
            wt = rng.standard_normal((n, k)).astype(np.float32)
            full_t = paired_rows_matmul(x, wt.T)
            np.testing.assert_array_equal(
                full_t[3], paired_rows_matmul(x[3:4], wt.T)[0]
            )

    @pytest.mark.parametrize("m_subspaces", [2, 8, 16, 32])
    def test_encode_rows_independent_of_batch(self, m_subspaces):
        rng = np.random.default_rng(1)
        dim = 32
        pq = ProductQuantizer.fit(
            rng.standard_normal((512, dim)).astype(np.float32),
            m_subspaces=m_subspaces,
            nbits=4,
            kmeans_iters=3,
        )
        vectors = rng.standard_normal((33, dim)).astype(np.float32)
        full = pq.encode(vectors)
        for split in (1, 2, 5):
            parts = [
                pq.encode(chunk)
                for chunk in np.array_split(vectors, split)
                if chunk.size
            ]
            np.testing.assert_array_equal(full, np.concatenate(parts))

    def test_lut_layouts_and_batching_bit_equal(self):
        rng = np.random.default_rng(2)
        pq = ProductQuantizer.fit(
            rng.standard_normal((256, 16)).astype(np.float32),
            m_subspaces=8,
            nbits=4,
            kmeans_iters=3,
        )
        queries = rng.standard_normal((11, 16)).astype(np.float32)
        default = pq.build_score_luts(queries)
        major = pq.build_score_luts(queries, subspace_major=True)
        np.testing.assert_array_equal(default, major.transpose(1, 0, 2))
        one = pq.build_score_luts(queries[4:5], subspace_major=True)
        np.testing.assert_array_equal(major[:, 4:5], one)


class TestFusedTokenIdentity:
    @pytest.mark.parametrize("batch", [1, 2, 3, 5, 8])
    def test_mixed_length_batches(
        self, tiny_model, million_factory, calibration_tokens, batch
    ):
        prompts = [
            calibration_tokens[i * 7 : i * 7 + 5 + 9 * i] for i in range(batch)
        ]
        sequential, _ = _run_engine(tiny_model, million_factory, prompts, fused=False)
        fused, engine = _run_engine(tiny_model, million_factory, prompts, fused=True)
        for a, b in zip(sequential, fused):
            np.testing.assert_array_equal(a, b)
        if batch > 1:
            assert engine.fused_decode_steps > 0

    @pytest.mark.parametrize("window", [0, 3, 17])
    def test_residual_window_sweep(
        self, tiny_model, million_factory, million_config, calibration_tokens, window
    ):
        factory = _window_factory(million_factory, million_config, window)
        prompts = [calibration_tokens[s : s + 11 + s % 13] for s in (0, 17, 40, 80)]
        sequential, _ = _run_engine(tiny_model, factory, prompts, fused=False)
        fused, _ = _run_engine(tiny_model, factory, prompts, fused=True)
        for a, b in zip(sequential, fused):
            np.testing.assert_array_equal(a, b)

    def test_stop_token_and_varying_budgets(
        self, tiny_model, million_factory, calibration_tokens
    ):
        prompts = [calibration_tokens[s : s + 9 + s % 5] for s in (0, 10, 30)]

        def run(fused):
            engine = BatchedMillionEngine(
                tiny_model, million_factory, max_batch_size=4, fused_decode=fused
            )
            ids = [
                engine.add_request(
                    p, max_new_tokens=5 + 4 * i, stop_token=int(p[0]) % 16
                )
                for i, p in enumerate(prompts)
            ]
            results = engine.run()
            return [results[i] for i in ids]

        for a, b in zip(run(False), run(True)):
            np.testing.assert_array_equal(a, b)

    def test_stochastic_samplers_identical(
        self, tiny_model, million_factory, calibration_tokens
    ):
        prompts = [calibration_tokens[s : s + 8] for s in (0, 16, 48, 90)]
        kwargs = dict(sampler=TemperatureSampler(0.8), seed=123, max_new_tokens=10)
        sequential, _ = _run_engine(
            tiny_model, million_factory, prompts, fused=False, **kwargs
        )
        fused, _ = _run_engine(
            tiny_model, million_factory, prompts, fused=True, **kwargs
        )
        for a, b in zip(sequential, fused):
            np.testing.assert_array_equal(a, b)

    def test_gqa_alibi_model(self, gqa_model, calibration_tokens):
        config = MillionConfig.for_equivalent_bits(
            gqa_model.config.head_dim, bits=4, kmeans_iters=3, calibration_samples=512
        )
        factory = calibrate_million(
            gqa_model,
            calibration_tokens % gqa_model.config.vocab_size,
            config,
            chunk_size=128,
        )
        prompts = [
            calibration_tokens[s : s + 6 + s % 11] % gqa_model.config.vocab_size
            for s in (0, 9, 33, 70, 95)
        ]
        sequential, _ = _run_engine(gqa_model, factory, prompts, fused=False)
        fused, _ = _run_engine(gqa_model, factory, prompts, fused=True)
        for a, b in zip(sequential, fused):
            np.testing.assert_array_equal(a, b)

    def test_property_sweep_random_workloads(
        self, tiny_model, million_factory, million_config, calibration_tokens
    ):
        rng = np.random.default_rng(99)
        for trial in range(4):
            window = int(rng.choice([0, 2, 9]))
            factory = _window_factory(million_factory, million_config, window)
            batch = int(rng.integers(2, 7))
            prompts = [
                calibration_tokens[: int(rng.integers(4, 60))] for _ in range(batch)
            ]
            budget = int(rng.integers(3, 14))
            sequential, _ = _run_engine(
                tiny_model, factory, prompts, fused=False, max_new_tokens=budget,
                max_batch_size=int(rng.integers(2, 6)),
            )
            fused, _ = _run_engine(
                tiny_model, factory, prompts, fused=True, max_new_tokens=budget,
                max_batch_size=int(rng.integers(2, 6)),
            )
            for a, b in zip(sequential, fused):
                np.testing.assert_array_equal(a, b)


class TestFusedPooled:
    BLOCK_TOKENS = 4

    def _build(self, tiny_model, tiny_config, million_factory, million_config,
               num_blocks, fused, max_batch_size=4):
        pool = BlockPool.for_model(
            tiny_config, million_config, num_blocks=num_blocks,
            block_tokens=self.BLOCK_TOKENS,
        )
        factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        return BatchedMillionEngine(
            tiny_model, factory, max_batch_size=max_batch_size, fused_decode=fused
        )

    def test_prefix_shared_batches_identical(
        self, tiny_model, tiny_config, million_factory, million_config,
        calibration_tokens,
    ):
        shared = calibration_tokens[:16]
        prompts = [
            np.concatenate([shared, calibration_tokens[20 + 5 * i : 25 + 5 * i]])
            for i in range(4)
        ]

        def run(fused):
            engine = self._build(
                tiny_model, tiny_config, million_factory, million_config,
                num_blocks=256, fused=fused,
            )
            ids = [engine.add_request(p, 10) for p in prompts]
            results = engine.run()
            assert engine.prefix_block_hits > 0  # sharing actually happened
            return [results[i] for i in ids]

        for a, b in zip(run(False), run(True)):
            np.testing.assert_array_equal(a, b)

    def test_preemption_and_restore_identical(
        self, tiny_model, tiny_config, million_factory, million_config,
        calibration_tokens,
    ):
        prompts = [calibration_tokens[s : s + 13 + s % 7] for s in (0, 15, 40, 70)]

        def run(fused, num_blocks):
            engine = self._build(
                tiny_model, tiny_config, million_factory, million_config,
                num_blocks=num_blocks, fused=fused,
            )
            ids = [engine.add_request(p, 14) for p in prompts]
            results = engine.run()
            return [results[i] for i in ids], engine

        uncontended, _ = run(fused=True, num_blocks=512)
        seq_tight, seq_engine = run(fused=False, num_blocks=40)
        fused_tight, fused_engine = run(fused=True, num_blocks=40)
        assert seq_engine.preemption_count > 0, "workload must trigger preemption"
        assert fused_engine.preemption_count > 0
        for a, b, c in zip(uncontended, seq_tight, fused_tight):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_cancel_mid_batch_identical(
        self, tiny_model, tiny_config, million_factory, million_config,
        calibration_tokens,
    ):
        prompts = [calibration_tokens[s : s + 10 + s % 9] for s in (0, 12, 30, 60)]

        def run(fused):
            engine = self._build(
                tiny_model, tiny_config, million_factory, million_config,
                num_blocks=256, fused=fused,
            )
            ids = [engine.add_request(p, 12) for p in prompts]
            for _ in range(4):
                engine.step()
            assert engine.cancel(ids[1]) is True
            results = engine.run()
            return ids, results

        ids_a, res_a = run(False)
        ids_b, res_b = run(True)
        for i_a, i_b in zip(ids_a, ids_b):
            np.testing.assert_array_equal(res_a[i_a], res_b[i_b])


class TestArenaAndTiming:
    def test_scratch_arena_stops_growing(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=4, fused_decode=True
        )
        for s in (0, 11, 25, 50):
            engine.add_request(calibration_tokens[s : s + 8 + s % 6], 60)
        for _ in range(12):
            engine.step()
        arena = engine._fused_attention.arena
        grows_after_warmup = arena.grow_count
        total_bytes = arena.total_bytes
        hits_before = arena.hit_count
        for _ in range(10):
            engine.step()
        # Steady-state decode must reuse every scratch buffer: no new
        # allocations, only hits (buffers are sized to the high-water mark).
        assert arena.grow_count == grows_after_warmup
        assert arena.total_bytes == total_bytes
        assert arena.hit_count > hits_before

    def test_step_timing_split_and_fused_batch_size(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=4, fused_decode=True
        )
        for s in (0, 20, 45):
            engine.add_request(calibration_tokens[s : s + 10], 8)
        engine.step()
        timing = engine.stats()["step_timing"]
        assert timing["steps"] == 1
        assert timing["fused_decode_enabled"] is True
        assert timing["last_fused_batch_size"] == 3
        assert timing["last_prefill_seconds"] > 0.0
        assert timing["last_decode_seconds"] > 0.0
        engine.run()
        timing = engine.stats()["step_timing"]
        assert timing["fused_decode_steps"] >= 1
        assert timing["decode_seconds_total"] >= timing["last_decode_seconds"]
        assert timing["prefill_seconds_total"] >= timing["last_prefill_seconds"]

    def test_sequential_engine_reports_zero_fused_batch(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=2, fused_decode=False
        )
        engine.add_request(calibration_tokens[:9], 3)
        engine.run()
        timing = engine.stats()["step_timing"]
        assert timing["fused_decode_steps"] == 0
        assert timing["last_fused_batch_size"] == 0

    def test_metrics_expose_fused_timing(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(
            tiny_model, million_factory, max_batch_size=2, fused_decode=True
        )
        engine.add_request(calibration_tokens[:9], 4)
        engine.run()
        text = render_prometheus(GatewayMetrics(), [engine.stats()])
        assert "repro_engine_fused_decode_steps_total" in text
        assert "repro_engine_last_fused_batch_size" in text
        assert "repro_engine_decode_seconds_total" in text
