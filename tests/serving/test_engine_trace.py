"""Engine-level observability: trace spans, histograms, counters.

These tests drive the real batched engine (pooled and unpooled) with a live
:class:`TraceRecorder` and assert the request lifecycle is reconstructible
from the buffer — queue wait, prefill, decode steps, per-token instants,
preemption and cancellation — and that the latency histograms `stats()`
reports are consistent with the work performed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)

BLOCK_TOKENS = 4


@pytest.fixture()
def traced_engine_factory(tiny_model, tiny_config, million_factory, million_config):
    """Fresh engine + recorder per call; pooled unless ``pool_blocks=0``."""

    def build(pool_blocks=256, max_batch_size=4, **kwargs):
        trace = TraceRecorder(capacity=4096)
        if pool_blocks > 0:
            pool = BlockPool.for_model(
                tiny_config, million_config,
                num_blocks=pool_blocks, block_tokens=BLOCK_TOKENS,
            )
            factory = PooledMillionCacheFactory.from_factory(million_factory, pool)
        else:
            factory = million_factory
        engine = BatchedMillionEngine(
            tiny_model, factory, max_batch_size=max_batch_size,
            trace=trace, trace_track="replica-0", **kwargs,
        )
        return engine, trace

    yield build
    tiny_model.reset_cache(FullPrecisionCacheFactory())


def _names(trace, request_id=None):
    return [e.name for e in trace.snapshot(request_id=request_id)]


class TestLifecycleSpans:
    def test_request_journey_is_reconstructible(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, trace = traced_engine_factory()
        request_id = engine.add_request(calibration_tokens[:12], max_new_tokens=4)
        engine.run()
        names = _names(trace, request_id=request_id)
        assert names[0] == "queued"
        assert "queue_wait" in names
        assert "prefill" in names
        # The final token rides the finish marker, so N tokens show up as
        # N-1 "token" instants plus one "finish".
        assert names.count("token") == 3
        assert names[-1] == "finish"
        # Span ordering: queue_wait ends where prefill begins the admission.
        events = {e.name: e for e in trace.snapshot(request_id=request_id)}
        wait, prefill = events["queue_wait"], events["prefill"]
        assert wait.ts <= prefill.ts
        assert prefill.args["tokens_computed"] == 12
        assert prefill.args["is_restore"] is False

    def test_decode_steps_list_their_batch(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, trace = traced_engine_factory()
        ids = [
            engine.add_request(calibration_tokens[i : i + 8], max_new_tokens=3)
            for i in range(0, 16, 8)
        ]
        engine.run()
        steps = [e for e in trace.snapshot() if e.name == "decode_step"]
        assert steps, "no decode_step spans recorded"
        # Every request appears in at least one step's batch listing.
        listed = {rid for e in steps for rid in e.args["requests"]}
        assert set(ids) <= listed
        assert all(e.dur > 0.0 for e in steps)
        assert all(e.args["batch"] >= 1 for e in steps)

    def test_unpooled_engine_traces_too(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, trace = traced_engine_factory(pool_blocks=0)
        request_id = engine.add_request(calibration_tokens[:10], max_new_tokens=2)
        engine.run()
        names = _names(trace, request_id=request_id)
        assert "prefill" in names and "finish" in names
        prefill = next(
            e for e in trace.snapshot(request_id=request_id) if e.name == "prefill"
        )
        assert prefill.args["tokens_computed"] == 10

    def test_cancel_records_instant(self, traced_engine_factory, calibration_tokens):
        engine, trace = traced_engine_factory()
        request_id = engine.add_request(calibration_tokens[:8], max_new_tokens=64)
        engine.step()
        engine.cancel(request_id)
        names = _names(trace, request_id=request_id)
        assert "cancelled" in names and names[-1] == "finish"

    def test_preemption_and_restore_traced(
        self, traced_engine_factory, calibration_tokens
    ):
        # A pool too small for two long sequences forces preemption; the
        # victim's eviction and exact-replay restore must both be visible.
        engine, trace = traced_engine_factory(pool_blocks=14, max_batch_size=4)
        prompt = calibration_tokens[:BLOCK_TOKENS]
        for i in range(4):
            engine.add_request(prompt.copy(), max_new_tokens=24, request_id=f"r{i}")
        engine.run()
        assert engine.preemption_count > 0
        all_names = _names(trace)
        assert "preempted" in all_names
        restores = [e for e in trace.snapshot() if e.name == "restore"]
        assert restores
        assert all(e.args["is_restore"] for e in restores)
        preempted = next(e for e in trace.snapshot() if e.name == "preempted")
        assert preempted.request_id is not None
        assert preempted.args["preemptions"] >= 1

    def test_prefix_adoption_reported_as_reuse(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, trace = traced_engine_factory()
        prompt = calibration_tokens[: 4 * BLOCK_TOKENS + 2]
        engine.add_request(prompt.copy(), max_new_tokens=2, request_id="cold")
        engine.run()
        engine.add_request(prompt.copy(), max_new_tokens=2, request_id="warm")
        engine.run()
        warm_prefill = next(
            e for e in trace.snapshot(request_id="warm") if e.name == "prefill"
        )
        assert warm_prefill.args["tokens_reused"] == 4 * BLOCK_TOKENS
        pool_adopts = [e for e in trace.snapshot() if e.name == "pool_adopt"]
        assert len(pool_adopts) == 4


class TestHistograms:
    def test_stats_histograms_match_work(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, _ = traced_engine_factory()
        n_requests, n_tokens = 3, 4
        for i in range(n_requests):
            engine.add_request(calibration_tokens[i : i + 8], max_new_tokens=n_tokens)
        engine.run()
        hist = engine.stats()["histograms"]
        assert hist["queue_wait_seconds"]["count"] == n_requests
        assert hist["queue_wait_seconds"]["sum"] >= 0.0
        assert hist["prefill_step_seconds"]["count"] >= 1
        assert hist["decode_step_seconds"]["count"] >= n_tokens
        fused = hist["fused_batch_size"]
        assert fused["count"] == engine.fused_decode_steps

    def test_restore_does_not_double_count_queue_wait(
        self, traced_engine_factory, calibration_tokens
    ):
        engine, _ = traced_engine_factory(pool_blocks=14, max_batch_size=4)
        prompt = calibration_tokens[:BLOCK_TOKENS]
        for i in range(4):
            engine.add_request(prompt.copy(), max_new_tokens=24)
        engine.run()
        assert engine.preemption_count > 0
        hist = engine.stats()["histograms"]
        assert hist["queue_wait_seconds"]["count"] == 4

    def test_disabled_recorder_records_nothing(
        self, tiny_model, million_factory, calibration_tokens
    ):
        engine = BatchedMillionEngine(tiny_model, million_factory)
        assert engine.trace is NULL_RECORDER
        engine.add_request(calibration_tokens[:8], max_new_tokens=2)
        engine.run()
        assert len(engine.trace) == 0
        # Histograms observe regardless: they are always-on metrics.
        assert engine.stats()["histograms"]["queue_wait_seconds"]["count"] == 1
        tiny_model.reset_cache(FullPrecisionCacheFactory())


class TestTokenIdentityUnderTracing:
    def test_tracing_does_not_change_tokens(
        self, traced_engine_factory, tiny_model, million_factory, calibration_tokens
    ):
        prompts = [calibration_tokens[i : i + 10].copy() for i in (0, 20, 40)]
        engine, _ = traced_engine_factory(pool_blocks=0)
        traced = engine.generate_batch(prompts, max_new_tokens=6)
        tiny_model.reset_cache(FullPrecisionCacheFactory())
        plain = BatchedMillionEngine(tiny_model, million_factory).generate_batch(
            [p.copy() for p in prompts], max_new_tokens=6
        )
        for a, b in zip(traced, plain):
            np.testing.assert_array_equal(a, b)
