"""Engine phase profiler: attribution accuracy and the null-profiler default.

The acceptance criterion lives here: the profiler's decode-rooted self
times must sum to within 10% of the engine's own measured decode wall
(``decode_seconds_total``).  The engine records the ``decode`` root from
the same wall split that feeds ``decode_seconds_total``, so in practice
the sums agree exactly; the 10% band keeps the test honest about what the
contract promises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.prof import NULL_PROFILER, PhaseProfiler, phase_table
from repro.serving import BatchedMillionEngine


def _run_batch(engine, calibration_tokens, n_requests=4, max_new_tokens=8):
    rng = np.random.default_rng(3)
    for i in range(n_requests):
        start = int(rng.integers(0, 64))
        engine.add_request(
            calibration_tokens[start:start + 8 + i], max_new_tokens=max_new_tokens
        )
    return engine.run()


@pytest.fixture()
def profiled_engine(tiny_config, million_factory):
    from repro.models import build_model

    return BatchedMillionEngine(
        build_model(tiny_config, seed=7), million_factory, prof=PhaseProfiler()
    )


class TestPhaseAttribution:
    def test_decode_self_times_sum_to_decode_wall(
        self, profiled_engine, calibration_tokens
    ):
        results = _run_batch(profiled_engine, calibration_tokens)
        assert results  # the workload actually ran
        snap = profiled_engine.prof.snapshot()
        decode_self = sum(
            row["self_s"]
            for row in phase_table(snap)
            if row["phase"] == "decode" or row["phase"].startswith("decode/")
        )
        wall = profiled_engine.decode_seconds_total
        assert wall > 0.0
        assert decode_self == pytest.approx(wall, rel=0.10)

    def test_expected_phases_recorded(self, profiled_engine, calibration_tokens):
        _run_batch(profiled_engine, calibration_tokens)
        snap = profiled_engine.prof.snapshot()
        # Engine-level roots, the sampler, and the fused kernel's phases.
        assert {"decode", "prefill", "decode/sample"} <= set(snap)
        kernel_phases = {
            "decode/flush_encode",
            "decode/lut_build",
            "decode/adc_gather",
            "decode/softmax_merge",
            "decode/scatter_add",
        }
        assert kernel_phases <= set(snap), sorted(snap)
        # Every phase carries real accumulation.
        for entry in snap.values():
            assert entry["count"] >= 1
            assert entry["total_s"] >= 0.0

    def test_stats_carries_phase_snapshot(self, profiled_engine, calibration_tokens):
        _run_batch(profiled_engine, calibration_tokens)
        phases = profiled_engine.stats()["phases"]
        assert phases == profiled_engine.prof.snapshot()


class TestChunkedPhases:
    @pytest.fixture()
    def chunked_profiled_engine(self, tiny_config, million_config, million_factory):
        from repro.models import build_model
        from repro.serving import BlockPool, PooledMillionCacheFactory

        pool = BlockPool.for_model(
            tiny_config, million_config, num_blocks=256, block_tokens=4
        )
        return BatchedMillionEngine(
            build_model(tiny_config, seed=7),
            PooledMillionCacheFactory.from_factory(million_factory, pool),
            prof=PhaseProfiler(),
            chunked_prefill=True,
            prefill_token_budget=8,
        )

    def test_chunk_phases_recorded(self, chunked_profiled_engine, calibration_tokens):
        engine = chunked_profiled_engine
        engine.add_request(calibration_tokens[:40], max_new_tokens=4)
        engine.add_request(calibration_tokens[:40], max_new_tokens=4)  # adopts
        engine.run()
        snap = engine.prof.snapshot()
        # Chunk sub-steps and block adoption show up under the prefill root.
        assert {"prefill", "prefill/chunk", "prefill/adopt"} <= set(snap), sorted(snap)
        assert snap["prefill/chunk"]["count"] == engine.prefill_chunks_total
        assert snap["prefill/chunk"]["count"] >= 2  # 40 tokens on budget 8

    def test_decode_self_sum_contract_holds_under_chunking(
        self, chunked_profiled_engine, calibration_tokens
    ):
        """Interleaved chunk work must not leak into decode attribution."""
        engine = chunked_profiled_engine
        _run_batch(engine, calibration_tokens)
        snap = engine.prof.snapshot()
        decode_self = sum(
            row["self_s"]
            for row in phase_table(snap)
            if row["phase"] == "decode" or row["phase"].startswith("decode/")
        )
        wall = engine.decode_seconds_total
        assert wall > 0.0
        assert decode_self == pytest.approx(wall, rel=0.10)


class TestNullDefault:
    def test_engine_defaults_to_null_profiler(
        self, tiny_config, million_factory, calibration_tokens
    ):
        from repro.models import build_model

        engine = BatchedMillionEngine(build_model(tiny_config, seed=7), million_factory)
        assert engine.prof is NULL_PROFILER
        _run_batch(engine, calibration_tokens, n_requests=2, max_new_tokens=4)
        assert engine.stats()["phases"] == {}
