"""Tests for the analytic GPU performance model."""

import numpy as np
import pytest

from repro.perf import (
    A40,
    A100_80GB,
    FP16_BASELINE,
    KIVI_4BIT,
    KVQUANT_4BIT,
    LLAMA_2_7B,
    MILLION_3BIT,
    MILLION_4BIT,
    MILLION_4BIT_SYNC,
    OpCost,
    breakdown_sweep,
    decode_step_latency_ms,
    decode_step_ops,
    estimate_tpot,
    get_device,
    get_scheme,
    is_oom,
    kv_cache_bytes,
    latency_breakdown,
    max_context_length,
    memory_footprint,
    op_time,
    schedule_step,
    build_timeline,
    weights_bytes,
)
from repro.perf.roofline import OpTiming


class TestDeviceAndSchemes:
    def test_device_lookup(self):
        assert get_device("a40").name == "A40"
        assert get_device("A100-80GB").memory_gb == 80.0
        with pytest.raises(Exception):
            get_device("h100")

    def test_scheme_lookup(self):
        assert get_scheme("million-4b").kv_bits == 4.0
        with pytest.raises(Exception):
            get_scheme("million-5b")

    def test_llama_weights_about_13gb(self):
        assert 12e9 < weights_bytes(LLAMA_2_7B) < 15e9


class TestKVCacheBytes:
    def test_fp16_per_token(self):
        one_token = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, 1)
        assert one_token == pytest.approx(2 * 4096 * 32 * 2.0, rel=1e-6)

    def test_4bit_is_quarter_of_fp16(self):
        fp16 = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, 4096)
        million = kv_cache_bytes(LLAMA_2_7B, MILLION_4BIT, 4096)
        assert million < fp16 / 3.5

    def test_grows_linearly(self):
        a = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, 1000)
        b = kv_cache_bytes(LLAMA_2_7B, FP16_BASELINE, 2000)
        assert b == pytest.approx(2 * a, rel=1e-6)


class TestRoofline:
    def test_memory_bound_op(self):
        cost = OpCost(name="x", bytes_read=1e9, memory_efficiency=1.0, n_kernels=0)
        timing = op_time(cost, A40)
        assert timing.time_s == pytest.approx(1e9 / A40.memory_bandwidth_bytes_per_s)

    def test_compute_bound_op(self):
        cost = OpCost(
            name="x", tensor_flops=1e13, bytes_read=1.0, compute_efficiency=1.0, n_kernels=0
        )
        timing = op_time(cost, A40)
        assert timing.time_s == pytest.approx(1e13 / A40.fp16_flops_per_s, rel=1e-3)

    def test_launch_overhead_added(self):
        cost = OpCost(name="x", n_kernels=10, bytes_read=0.0)
        assert op_time(cost, A40).time_s == pytest.approx(10 * A40.kernel_launch_s)

    def test_faster_device_is_faster(self):
        ops = decode_step_ops(LLAMA_2_7B, FP16_BASELINE, 4096)
        t_a40 = sum(op_time(o, A40).time_s for o in ops)
        t_a100 = sum(op_time(o, A100_80GB).time_s for o in ops)
        assert t_a100 < t_a40


class TestStreams:
    def test_async_hides_quant_time(self):
        timings = [
            OpTiming("main", 10e-3, 0, 0, 0, stream="main"),
            OpTiming("quant", 2e-3, 0, 0, 0, stream="quant"),
        ]
        async_step = schedule_step(timings, async_enabled=True)
        sync_step = schedule_step(timings, async_enabled=False)
        assert async_step.total_time_s == pytest.approx(10e-3)
        assert sync_step.total_time_s == pytest.approx(12e-3)

    def test_partial_overlap(self):
        timings = [
            OpTiming("main", 1e-3, 0, 0, 0, stream="main"),
            OpTiming("quant", 5e-3, 0, 0, 0, stream="quant"),
        ]
        step = schedule_step(timings, async_enabled=True, overlap_fraction=0.5)
        assert step.exposed_quant_time_s == pytest.approx(5e-3 - 0.5e-3)

    def test_timeline_events(self):
        timings = [
            OpTiming("a", 1e-3, 0, 0, 0, stream="main"),
            OpTiming("b", 2e-3, 0, 0, 0, stream="main"),
            OpTiming("q", 1e-3, 0, 0, 0, stream="quant"),
        ]
        events = build_timeline(timings, async_enabled=True)
        main_events = [e for e in events if e.stream == "main"]
        assert main_events[0].end_s == pytest.approx(main_events[1].start_s)
        assert any(e.stream == "quant" for e in events)


class TestMemoryModel:
    def test_baseline_fits_at_32k_not_at_64k(self):
        assert not is_oom(LLAMA_2_7B, FP16_BASELINE, 32768, A40)
        assert is_oom(LLAMA_2_7B, FP16_BASELINE, 65536, A40)

    def test_kivi_oom_at_16k(self):
        assert not is_oom(LLAMA_2_7B, KIVI_4BIT, 8192, A40)
        assert is_oom(LLAMA_2_7B, KIVI_4BIT, 16384, A40)

    def test_million_runs_at_80k(self):
        assert not is_oom(LLAMA_2_7B, MILLION_4BIT, 80000, A40)

    def test_max_context_ordering(self):
        assert (
            max_context_length(LLAMA_2_7B, MILLION_4BIT, A40)
            > max_context_length(LLAMA_2_7B, FP16_BASELINE, A40)
            > 0
        )

    def test_footprint_components_positive(self):
        footprint = memory_footprint(LLAMA_2_7B, MILLION_4BIT, 4096)
        assert footprint.weights_bytes > 0
        assert footprint.kv_cache_bytes > 0
        assert footprint.total_gb == pytest.approx(footprint.total_bytes / 1024**3)


class TestTPOT:
    """Table IV shape checks."""

    def test_baseline_grows_with_context(self):
        short = estimate_tpot(LLAMA_2_7B, "baseline-fp16", 1024).tpot_ms
        long = estimate_tpot(LLAMA_2_7B, "baseline-fp16", 32768).tpot_ms
        assert long > 2.5 * short

    def test_million_beats_baseline_at_all_table_lengths(self):
        for prefill in (1024, 2048, 4096, 8192, 16384, 32768):
            baseline = estimate_tpot(LLAMA_2_7B, FP16_BASELINE, prefill)
            million = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, prefill)
            assert million.tpot_ms < baseline.tpot_ms

    def test_e2e_speedup_about_2x_at_32k(self):
        baseline = estimate_tpot(LLAMA_2_7B, FP16_BASELINE, 32768).tpot_ms
        million = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, 32768).tpot_ms
        assert 1.7 < baseline / million < 3.2

    def test_kvquant_slowest_at_short_context(self):
        results = {
            name: estimate_tpot(LLAMA_2_7B, name, 1024).tpot_ms
            for name in ("baseline-fp16", "kivi-4b", "kvquant-4b", "million-4b")
        }
        assert results["kvquant-4b"] == max(results.values())
        assert results["kivi-4b"] > results["baseline-fp16"]

    def test_kivi_crosses_baseline_around_8k(self):
        assert (
            estimate_tpot(LLAMA_2_7B, KIVI_4BIT, 2048).tpot_ms
            > estimate_tpot(LLAMA_2_7B, FP16_BASELINE, 2048).tpot_ms
        )
        assert (
            estimate_tpot(LLAMA_2_7B, KIVI_4BIT, 8192).tpot_ms
            < estimate_tpot(LLAMA_2_7B, FP16_BASELINE, 8192).tpot_ms * 1.05
        )

    def test_kivi_oom_reported(self):
        result = estimate_tpot(LLAMA_2_7B, KIVI_4BIT, 16384)
        assert result.oom and np.isnan(result.tpot_ms)

    def test_async_quantization_helps(self):
        sync = estimate_tpot(LLAMA_2_7B, MILLION_4BIT_SYNC, 8192).tpot_ms
        async_ = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, 8192).tpot_ms
        assert async_ < sync

    def test_lower_bits_cheaper_at_long_context(self):
        four = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, 32768).tpot_ms
        three = estimate_tpot(LLAMA_2_7B, MILLION_3BIT, 32768).tpot_ms
        assert three < four

    def test_breakdown_in_result(self):
        result = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, 4096)
        assert "sdpa" in result.breakdown_ms and "ffn" in result.breakdown_ms


class TestBreakdown:
    """Fig. 7 shape checks."""

    def test_cat_and_sdpa_dominate_baseline_at_long_context(self):
        breakdown = latency_breakdown(LLAMA_2_7B, FP16_BASELINE, 32768)
        ops = breakdown.operator_ms
        assert ops["cat"] > ops["ffn"]
        assert ops["sdpa"] > ops["qkv_proj"]

    def test_million_reduces_cat_and_sdpa(self):
        baseline = latency_breakdown(LLAMA_2_7B, FP16_BASELINE, 32768)
        million = latency_breakdown(LLAMA_2_7B, MILLION_4BIT, 32768)
        assert million.operator_ms["cat"] < baseline.operator_ms["cat"] / 10
        assert million.operator_ms["sdpa"] < baseline.operator_ms["sdpa"]

    def test_speedup_increases_with_context(self):
        points = breakdown_sweep(LLAMA_2_7B, [1024, 8192, 32768])
        speedups = [p.e2e_speedup for p in points]
        assert speedups[0] < speedups[1] < speedups[2]
        assert speedups[2] > 1.8

    def test_sdpa_speedup_about_2x_at_32k(self):
        point = breakdown_sweep(LLAMA_2_7B, [32768])[0]
        assert 1.3 < point.sdpa_speedup < 3.0

    def test_baseline_oom_at_64k_million_not(self):
        points = breakdown_sweep(LLAMA_2_7B, [65536, 80000])
        assert all(p.baseline.oom for p in points)
        assert all(not p.million.oom for p in points)

    def test_attention_subset_smaller_than_total(self):
        breakdown = latency_breakdown(LLAMA_2_7B, FP16_BASELINE, 8192)
        assert 0 < breakdown.attention_ms < breakdown.total_ms

    def test_invalid_context(self):
        with pytest.raises(Exception):
            decode_step_ops(LLAMA_2_7B, FP16_BASELINE, 0)
