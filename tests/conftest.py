"""Shared fixtures: tiny configs, models and calibrated quantizers.

The expensive fixtures (calibrated MILLION / KVQuant factories) are session
scoped so the whole suite stays fast; tests must not mutate them in place
(resetting a model's cache with a fixture factory is fine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MillionConfig, calibrate_million, collect_kv_samples
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.models.weights import OutlierSpec


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    """Small RoPE model used by most unit tests."""
    return ModelConfig(
        name="test-tiny",
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=512,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_config):
    """Deterministic tiny model with the default outlier structure."""
    return build_model(tiny_config, seed=7)


@pytest.fixture(scope="session")
def gqa_config() -> ModelConfig:
    """GQA + ALiBi model exercising the non-default attention paths."""
    return ModelConfig(
        name="test-gqa-alibi",
        vocab_size=128,
        d_model=64,
        n_layers=2,
        n_heads=4,
        n_kv_heads=2,
        max_seq_len=256,
        positional="alibi",
        norm="layernorm",
        activation="gelu",
    )


@pytest.fixture(scope="session")
def gqa_model(gqa_config):
    return build_model(gqa_config, seed=11)


@pytest.fixture(scope="session")
def calibration_tokens(tiny_config) -> np.ndarray:
    # The synthetic corpora use a 512-token vocabulary; fold into the tiny
    # model's vocabulary while keeping the sequential structure.
    return load_corpus("wikitext2-syn", "train", n_tokens=384, seed=5) % tiny_config.vocab_size


@pytest.fixture(scope="session")
def test_tokens(tiny_config) -> np.ndarray:
    return load_corpus("wikitext2-syn", "test", n_tokens=256, seed=6) % tiny_config.vocab_size


@pytest.fixture(scope="session")
def million_config(tiny_config) -> MillionConfig:
    return MillionConfig.for_equivalent_bits(
        tiny_config.head_dim, bits=4, kmeans_iters=4, calibration_samples=768
    )


@pytest.fixture(scope="session")
def million_factory(tiny_model, calibration_tokens, million_config):
    """Calibrated MILLION cache factory for the tiny model."""
    return calibrate_million(tiny_model, calibration_tokens, million_config)


@pytest.fixture(scope="session")
def kv_samples(tiny_model, calibration_tokens):
    """Collected KV samples reused by quantizer tests."""
    return collect_kv_samples(
        tiny_model, calibration_tokens, chunk_size=128, max_samples_per_layer=2048
    )
