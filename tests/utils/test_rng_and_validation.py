"""Tests for RNG helpers, validation helpers and the logging wrapper."""

import logging

import numpy as np
import pytest

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import derive_seed, get_rng, spawn_rngs
from repro.utils.validation import (
    ValidationError,
    require,
    require_divisible,
    require_in,
    require_non_negative,
    require_positive,
)


class TestGetRng:
    def test_same_seed_same_stream(self):
        a = get_rng(42).integers(0, 1000, size=10)
        b = get_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_none_is_deterministic(self):
        a = get_rng(None).integers(0, 1000, size=5)
        b = get_rng(None).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert get_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        rngs = spawn_rngs(1, 2)
        a = rngs[0].integers(0, 10**6, size=8)
        b = rngs[1].integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = spawn_rngs(9, 3)[2].integers(0, 10**6, size=4)
        b = spawn_rngs(9, 3)[2].integers(0, 10**6, size=4)
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "layer", 3) == derive_seed(1, "layer", 3)

    def test_salts_change_seed(self):
        assert derive_seed(1, "key", 0) != derive_seed(1, "value", 0)
        assert derive_seed(1, "key", 0) != derive_seed(1, "key", 1)

    def test_range(self):
        for salt in range(20):
            seed = derive_seed(123, salt)
            assert 0 <= seed < 2**31 - 1


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValidationError):
            require_non_negative(-1, "x")

    def test_require_divisible(self):
        require_divisible(64, 8, "ok")
        with pytest.raises(ValidationError):
            require_divisible(65, 8, "bad")
        with pytest.raises(ValidationError):
            require_divisible(8, 0, "zero denominator")

    def test_require_in(self):
        require_in("a", ("a", "b"), "letter")
        with pytest.raises(ValidationError):
            require_in("c", ("a", "b"), "letter")


class TestLogging:
    def test_namespacing(self):
        assert get_logger("perf").name == "repro.perf"
        assert get_logger().name == "repro"

    def test_null_handler_attached(self):
        get_logger("anything")
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_console_logging_idempotent(self):
        enable_console_logging()
        enable_console_logging()
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(stream_handlers) == 1
