"""Logging wrapper: JSON formatter, request-id correlation, idempotency."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.context import bind_request_id, reset_request_id
from repro.utils.logging import (
    enable_console_logging,
    enable_json_logging,
    get_logger,
)

ROOT = "repro"


@pytest.fixture(autouse=True)
def _pristine_library_logger():
    """Save/restore the library root logger's handlers and level."""
    root = logging.getLogger(ROOT)
    saved_handlers, saved_level = list(root.handlers), root.level
    root.handlers = []
    try:
        yield
    finally:
        root.handlers = saved_handlers
        root.setLevel(saved_level)


def _json_lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestGetLogger:
    def test_namespaced_under_library_root(self):
        assert get_logger().name == ROOT
        assert get_logger("gateway").name == f"{ROOT}.gateway"

    def test_silent_by_default(self, capsys):
        get_logger("quiet").warning("nothing should print")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestJsonLogging:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        enable_json_logging(logging.INFO, stream=stream)
        get_logger("engine").info("step %d done", 3)
        (line,) = _json_lines(stream)
        assert line["message"] == "step 3 done"
        assert line["level"] == "INFO"
        assert line["logger"] == f"{ROOT}.engine"
        assert "request_id" not in line
        assert "T" in line["ts"]

    def test_bound_request_id_lands_in_every_line(self):
        stream = io.StringIO()
        enable_json_logging(logging.INFO, stream=stream)
        logger = get_logger("gateway")
        token = bind_request_id("req-0042")
        try:
            logger.info("serving")
        finally:
            reset_request_id(token)
        logger.info("after unbind")
        bound, unbound = _json_lines(stream)
        assert bound["request_id"] == "req-0042"
        assert "request_id" not in unbound

    def test_exceptions_serialized(self):
        stream = io.StringIO()
        enable_json_logging(logging.INFO, stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger().exception("failed")
        (line,) = _json_lines(stream)
        assert "ValueError: boom" in line["exc_info"]
        assert json.dumps(line)  # still valid JSON despite the traceback

    def test_idempotent_and_rebinds_stream(self):
        first, second = io.StringIO(), io.StringIO()
        enable_json_logging(logging.INFO, stream=first)
        enable_json_logging(logging.DEBUG, stream=second)
        root = logging.getLogger(ROOT)
        assert len(root.handlers) == 1
        get_logger().debug("now visible")
        assert first.getvalue() == ""
        assert _json_lines(second)[0]["message"] == "now visible"


class TestConsoleLogging:
    def test_idempotent(self):
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.DEBUG)
        root = logging.getLogger(ROOT)
        assert len(root.handlers) == 1
        assert root.level == logging.DEBUG

    def test_console_and_json_coexist(self):
        # Each enabler must find only its own handler class: enabling both
        # yields exactly two handlers, and re-enabling either adds none.
        enable_console_logging(logging.INFO)
        stream = io.StringIO()
        enable_json_logging(logging.INFO, stream=stream)
        enable_console_logging(logging.INFO)
        enable_json_logging(logging.INFO)
        root = logging.getLogger(ROOT)
        assert len(root.handlers) == 2
        get_logger().info("to both")
        assert _json_lines(stream)[0]["message"] == "to both"
