"""Unit and property tests for bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitpack import (
    bits_required,
    code_dtype,
    pack_codes,
    packed_nbytes,
    unpack_codes,
)


class TestBitsRequired:
    def test_powers_of_two(self):
        assert bits_required(2) == 1
        assert bits_required(256) == 8
        assert bits_required(4096) == 12

    def test_non_powers(self):
        assert bits_required(3) == 2
        assert bits_required(257) == 9

    def test_single_value(self):
        assert bits_required(1) == 1

    def test_invalid(self):
        with pytest.raises(Exception):
            bits_required(0)


class TestCodeDtype:
    def test_small(self):
        assert code_dtype(8) == np.uint8

    def test_medium(self):
        assert code_dtype(12) == np.uint16

    def test_large(self):
        assert code_dtype(20) == np.uint32

    def test_out_of_range(self):
        with pytest.raises(Exception):
            code_dtype(0)
        with pytest.raises(Exception):
            code_dtype(64)


class TestPackUnpack:
    def test_roundtrip_8bit(self):
        codes = np.arange(256, dtype=np.uint16)
        packed = pack_codes(codes, 8)
        assert len(packed) == 256
        np.testing.assert_array_equal(unpack_codes(packed, 8, 256), codes)

    def test_roundtrip_12bit(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4096, size=1000)
        packed = pack_codes(codes, 12)
        assert len(packed) == packed_nbytes(1000, 12) == (1000 * 12 + 7) // 8
        np.testing.assert_array_equal(unpack_codes(packed, 12, 1000), codes)

    def test_roundtrip_odd_bits(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 2**5, size=77)
        packed = pack_codes(codes, 5)
        np.testing.assert_array_equal(unpack_codes(packed, 5, 77), codes)

    def test_2d_input_flattens(self):
        codes = np.arange(12, dtype=np.uint8).reshape(3, 4)
        packed = pack_codes(codes, 4)
        np.testing.assert_array_equal(unpack_codes(packed, 4, 12), codes.reshape(-1))

    def test_empty(self):
        packed = pack_codes(np.zeros(0, dtype=np.uint8), 7)
        assert unpack_codes(packed, 7, 0).size == 0

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.asarray([16]), 4)

    def test_buffer_too_short_rejected(self):
        with pytest.raises(Exception):
            unpack_codes(b"\x00", 8, 10)

    @given(
        nbits=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, nbits, n, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**nbits, size=n)
        packed = pack_codes(codes, nbits)
        assert len(packed) == packed_nbytes(n, nbits)
        np.testing.assert_array_equal(unpack_codes(packed, nbits, n), codes)


class TestPackedNbytes:
    def test_exact_byte_boundary(self):
        assert packed_nbytes(8, 8) == 8
        assert packed_nbytes(2, 4) == 1

    def test_rounds_up(self):
        assert packed_nbytes(3, 3) == 2
        assert packed_nbytes(1, 12) == 2

    def test_compression_vs_fp16(self):
        # 4-bit-equivalent MILLION codes: (M=32, nbits=8) for head_dim 64.
        fp16_bytes = 64 * 2
        code_bytes = packed_nbytes(32, 8)
        assert code_bytes * 4 == fp16_bytes
