"""Tests for the sparse-attention baselines (sliding window, heavy hitter)."""

import numpy as np
import pytest

from repro.baselines import (
    HeavyHitterCacheFactory,
    HeavyHitterKVCache,
    SlidingWindowCacheFactory,
    SlidingWindowKVCache,
)
from repro.models.attention_math import dense_attention
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory


@pytest.fixture(scope="module")
def cache_config():
    return ModelConfig(vocab_size=64, d_model=32, n_layers=1, n_heads=2, max_seq_len=1024)


@pytest.fixture(scope="module")
def kv_stream():
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(200, 2, 16)).astype(np.float32)
    values = rng.normal(size=(200, 2, 16)).astype(np.float32)
    return keys, values


class TestSlidingWindowCache:
    def test_eviction_keeps_sinks_and_window(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = SlidingWindowKVCache(cache_config, window=32, n_sink=4)
        for start in range(0, 200, 25):
            cache.append(keys[start : start + 25], values[start : start + 25])
        positions = cache.retained_positions
        assert cache.retained_tokens <= 32 + 4
        assert set(range(4)) <= set(positions.tolist())
        assert positions.max() == 199
        assert (positions >= 200 - 32).sum() == 32

    def test_no_eviction_below_window(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = SlidingWindowKVCache(cache_config, window=64, n_sink=4)
        cache.append(keys[:40], values[:40])
        assert cache.retained_tokens == 40

    def test_attention_matches_full_when_nothing_evicted(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = SlidingWindowKVCache(cache_config, window=256, n_sink=0)
        cache.append(keys[:50], values[:50])
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(1, 2, 16)).astype(np.float32)
        out = cache.attend(queries, np.asarray([49]), 0.25)
        exact = dense_attention(
            queries, keys[:50], values[:50], np.asarray([49]), np.arange(50), 0.25
        )
        np.testing.assert_allclose(out, exact, atol=1e-5)

    def test_memory_constant_in_context(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = SlidingWindowKVCache(cache_config, window=16, n_sink=2)
        cache.append(keys[:50], values[:50])
        first = cache.memory_bytes()
        cache.append(keys[50:150], values[50:150])
        assert cache.memory_bytes() == first

    def test_reset_and_factory(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = SlidingWindowCacheFactory(window=8, n_sink=1).create(0, cache_config)
        cache.append(keys[:20], values[:20])
        cache.reset()
        assert cache.seq_len == 0 and cache.retained_tokens == 0

    def test_invalid_args(self, cache_config):
        with pytest.raises(Exception):
            SlidingWindowKVCache(cache_config, window=0)
        with pytest.raises(Exception):
            SlidingWindowKVCache(cache_config, window=4, n_sink=-1)


class TestHeavyHitterCache:
    def test_budget_enforced(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = HeavyHitterKVCache(cache_config, budget=48, recent=16)
        rng = np.random.default_rng(2)
        for start in range(0, 200, 20):
            cache.append(keys[start : start + 20], values[start : start + 20])
            queries = rng.normal(size=(1, 2, 16)).astype(np.float32)
            cache.attend(queries, np.asarray([start + 19]), 0.25)
        assert cache.retained_tokens <= 48
        # The most recent tokens are always kept.
        positions = set(cache.retained_positions.tolist())
        assert set(range(200 - 16, 200)) <= positions

    def test_heavy_tokens_survive_eviction(self, cache_config):
        """A token that attracts most of the attention mass must be retained."""
        rng = np.random.default_rng(3)
        keys = rng.normal(size=(120, 2, 16)).astype(np.float32) * 0.05
        values = rng.normal(size=(120, 2, 16)).astype(np.float32)
        heavy_index = 10
        keys[heavy_index] = 3.0  # much larger dot products with any query
        cache = HeavyHitterKVCache(cache_config, budget=40, recent=8)
        for start in range(0, 120, 12):
            cache.append(keys[start : start + 12], values[start : start + 12])
            queries = np.abs(rng.normal(size=(1, 2, 16))).astype(np.float32)
            cache.attend(queries, np.asarray([start + 11]), 0.25)
        assert heavy_index in cache.retained_positions.tolist()

    def test_attention_matches_exact_when_budget_large(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = HeavyHitterKVCache(cache_config, budget=512, recent=32)
        cache.append(keys[:60], values[:60])
        rng = np.random.default_rng(4)
        queries = rng.normal(size=(2, 2, 16)).astype(np.float32)
        out = cache.attend(queries, np.asarray([58, 59]), 0.25)
        exact = dense_attention(
            queries, keys[:60], values[:60], np.asarray([58, 59]), np.arange(60), 0.25
        )
        np.testing.assert_allclose(out, exact, atol=1e-5)

    def test_budget_smaller_than_recent_window(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = HeavyHitterKVCache(cache_config, budget=8, recent=8)
        for start in range(0, 64, 16):
            cache.append(keys[start : start + 16], values[start : start + 16])
            cache.attend(
                np.random.default_rng(5).normal(size=(1, 2, 16)).astype(np.float32),
                np.asarray([start + 15]),
                0.25,
            )
        assert cache.retained_tokens <= 8
        assert cache.retained_positions.max() == 63

    def test_memory_accounting(self, cache_config, kv_stream):
        keys, values = kv_stream
        cache = HeavyHitterKVCache(cache_config, budget=32, recent=8)
        cache.append(keys[:32], values[:32])
        per_token = 2 * 2 * 16 * 2.0 + 4.0
        assert cache.memory_bytes() == pytest.approx(32 * per_token)

    def test_invalid_args(self, cache_config):
        with pytest.raises(Exception):
            HeavyHitterKVCache(cache_config, budget=0)
        with pytest.raises(Exception):
            HeavyHitterKVCache(cache_config, budget=8, recent=9)


class TestSparseCachesOnModel:
    def test_generation_with_sparse_caches(self, tiny_model):
        prompt = np.arange(48) % tiny_model.config.vocab_size
        for factory in (
            SlidingWindowCacheFactory(window=24, n_sink=2),
            HeavyHitterCacheFactory(budget=24, recent=8),
        ):
            tiny_model.reset_cache(factory)
            out = tiny_model.generate(prompt, 6, reset=False)
            assert out.shape == (6,)
        tiny_model.reset_cache(FullPrecisionCacheFactory())

    def test_eviction_loses_information_quantization_keeps(
        self, tiny_model, million_factory, test_tokens
    ):
        """The paper's argument for quantization over eviction, in miniature.

        With a harsh token budget, eviction-based caches diverge from the fp16
        reference far more than the 4-bit MILLION cache that keeps (a coarse
        version of) every token.
        """
        from repro.eval import logit_fidelity

        budget = 24
        million = logit_fidelity(tiny_model, test_tokens[:192], million_factory, chunk_size=16)
        window = logit_fidelity(
            tiny_model,
            test_tokens[:192],
            SlidingWindowCacheFactory(window=budget, n_sink=2),
            chunk_size=16,
        )
        assert million.mean_kl < window.mean_kl
        assert million.top1_agreement > window.top1_agreement
        tiny_model.reset_cache(FullPrecisionCacheFactory())
