"""JSON schema round-trip and validation for BENCH_<suite>.json documents."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    CaseResult,
    Metric,
    SchemaError,
    SuiteResult,
    result_filename,
)
from repro.bench.schema import suite_files


def _sample_suite() -> SuiteResult:
    return SuiteResult(
        suite="serving",
        smoke=True,
        created_at="2026-07-26T00:00:00+00:00",
        git_sha="abc1234",
        host={"platform": "linux", "python": "3.11.7", "numpy": "2.4.6", "cpu_count": 8},
        cases=[
            CaseResult(
                name="serving.prefix_sharing",
                suite="serving",
                params={"requests": 4, "prefix_tokens": 256},
                wall_s=3.21,
                budget_s=60.0,
                text="workload table",
                metrics=[
                    Metric("prefill_speedup_x", 5.98, unit="x",
                           direction="higher_is_better", tolerance_pct=60.0),
                    Metric("storage_us", 12.5, unit="us", gated=False),
                ],
            ),
            CaseResult(
                name="serving.broken",
                suite="serving",
                error="RuntimeError: boom",
            ),
        ],
    )


def test_round_trip_through_dict():
    suite = _sample_suite()
    restored = SuiteResult.from_dict(suite.to_dict())
    assert restored.to_dict() == suite.to_dict()
    assert restored.suite == "serving"
    assert restored.smoke is True
    assert restored.case("serving.prefix_sharing").metric("prefill_speedup_x").value == 5.98
    assert restored.case("serving.prefix_sharing").metric("storage_us").gated is False
    assert not restored.case("serving.broken").ok
    assert not restored.ok


def test_round_trip_through_file(tmp_path):
    suite = _sample_suite()
    path = suite.save(tmp_path / result_filename("serving"))
    assert path.name == "BENCH_serving.json"
    restored = SuiteResult.load(path)
    assert restored.to_dict() == suite.to_dict()
    assert suite_files(tmp_path) == [path]


def test_saved_document_has_versioned_layout(tmp_path):
    path = _sample_suite().save(tmp_path / "BENCH_serving.json")
    raw = json.loads(path.read_text())
    assert raw["schema_version"] == SCHEMA_VERSION
    assert {"suite", "smoke", "created_at", "git_sha", "host", "cases"} <= set(raw)
    case = raw["cases"][0]
    assert {"name", "suite", "wall_s", "budget_s", "params", "metrics"} <= set(case)
    metric = case["metrics"][0]
    assert {"name", "value", "unit", "direction", "tolerance_pct", "gated"} == set(metric)


def test_unsupported_schema_version_rejected():
    data = _sample_suite().to_dict()
    data["schema_version"] = 999
    with pytest.raises(SchemaError, match="unsupported schema_version"):
        SuiteResult.from_dict(data)


def test_missing_required_keys_rejected():
    data = _sample_suite().to_dict()
    del data["cases"]
    with pytest.raises(SchemaError, match="missing required keys"):
        SuiteResult.from_dict(data)


def test_bad_metric_direction_rejected():
    with pytest.raises(SchemaError, match="direction"):
        Metric("m", 1.0, direction="sideways")


def test_non_finite_metric_values_rejected():
    # NaN compares False against every tolerance, so it must never enter a
    # document the gate could read.
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(SchemaError, match="finite"):
            Metric("m", bad)
    data = _sample_suite().to_dict()
    data["cases"][0]["metrics"][0]["value"] = float("nan")
    with pytest.raises(SchemaError, match="finite"):
        SuiteResult.from_dict(data)


def test_invalid_json_file_reports_path(tmp_path):
    path = tmp_path / "BENCH_serving.json"
    path.write_text("{not json")
    with pytest.raises(SchemaError, match="BENCH_serving.json"):
        SuiteResult.load(path)


def test_metric_lookup_raises_keyerror():
    case = _sample_suite().case("serving.prefix_sharing")
    with pytest.raises(KeyError, match="no metric named"):
        case.metric("nope")
    with pytest.raises(KeyError, match="no case named"):
        _sample_suite().case("nope")
