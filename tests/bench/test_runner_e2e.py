"""Runner discovery + an end-to-end --smoke run through the real CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.bench import SuiteResult
from repro.bench.registry import unregister
from repro.bench.report import render_report
from repro.bench.runner import discover, run_suites

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write_dummy_bench(tmp_path: Path, stem: str, case_name: str) -> Path:
    path = tmp_path / f"{stem}.py"
    path.write_text(
        textwrap.dedent(
            f"""
            from repro.bench import benchmark_case

            @benchmark_case("{case_name}", suite="kernels", budget_s=5.0, smoke_budget_s=1.0)
            def dummy(ctx):
                ctx.set_params(smoke=ctx.smoke)
                ctx.record("value_ms", 2.0 if ctx.smoke else 4.0, unit="ms")
                ctx.emit("dummy ran")
            """
        )
    )
    return path


@pytest.fixture
def scratch_module():
    stems: list[str] = []
    names: list[str] = []
    yield stems, names
    for name in names:
        unregister(name)
    for stem in stems:
        sys.modules.pop(stem, None)


def test_discovery_imports_and_run_writes_schema_valid_json(tmp_path, scratch_module):
    stems, names = scratch_module
    stems.append("bench_e2e_dummy")
    names.append("kernels.e2e_dummy")
    _write_dummy_bench(tmp_path, "bench_e2e_dummy", "kernels.e2e_dummy")

    out_dir = tmp_path / "out"
    results = run_suites(
        ["kernels"],
        smoke=True,
        benchmarks_dir=tmp_path,
        output_dir=out_dir,
        case_names=["kernels.e2e_dummy"],
        progress=False,
    )
    assert set(results) == {"kernels"}
    path = out_dir / "BENCH_kernels.json"
    restored = SuiteResult.load(path)
    assert restored.smoke is True
    case = restored.case("kernels.e2e_dummy")
    assert case.ok
    assert case.params == {"smoke": True}
    assert case.metric("value_ms").value == 2.0
    assert case.budget_s == 1.0
    assert restored.git_sha  # runs from a checkout
    assert restored.host.get("python")
    # The markdown report renders the fresh result without a baseline.
    markdown = render_report([restored])
    assert "kernels.e2e_dummy" in markdown and "value_ms" in markdown


def test_discovery_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="benchmarks directory"):
        discover(tmp_path / "does-not-exist")


def test_unknown_case_filter_raises(tmp_path, scratch_module):
    stems, names = scratch_module
    stems.append("bench_e2e_dummy2")
    names.append("kernels.e2e_dummy2")
    _write_dummy_bench(tmp_path, "bench_e2e_dummy2", "kernels.e2e_dummy2")
    with pytest.raises(KeyError, match="no case"):
        run_suites(
            ["kernels"],
            benchmarks_dir=tmp_path,
            output_dir=None,
            case_names=["kernels.no_such_case"],
            progress=False,
        )


def test_case_filter_works_across_multiple_suites(tmp_path, scratch_module):
    """--case without narrowing --suite runs the owning suite, skips the rest."""
    stems, names = scratch_module
    stems.append("bench_e2e_dummy3")
    names.append("kernels.e2e_dummy3")
    _write_dummy_bench(tmp_path, "bench_e2e_dummy3", "kernels.e2e_dummy3")
    out_dir = tmp_path / "out"
    results = run_suites(
        ["serving", "quant", "kernels"],
        benchmarks_dir=tmp_path,
        output_dir=out_dir,
        case_names=["kernels.e2e_dummy3"],
        progress=False,
    )
    # Only the suite owning the case produced (and persisted) results.
    assert set(results) == {"kernels"}
    assert [p.name for p in sorted(out_dir.glob("BENCH_*.json"))] == ["BENCH_kernels.json"]


def test_write_baseline_refused_with_case_filter(tmp_path, scratch_module, capsys):
    """A filtered run must not clobber a full-suite baseline with a partial one."""
    from repro.bench.cli import main as cli_main

    stems, names = scratch_module
    stems.append("bench_e2e_dummy4")
    names.append("kernels.e2e_dummy4")
    _write_dummy_bench(tmp_path, "bench_e2e_dummy4", "kernels.e2e_dummy4")
    baseline_dir = tmp_path / "baselines"
    exit_code = cli_main(
        [
            "run",
            "--suite", "kernels",
            "--case", "kernels.e2e_dummy4",
            "--benchmarks-dir", str(tmp_path),
            "--output-dir", str(tmp_path / "out"),
            "--write-baseline",
            "--baseline-dir", str(baseline_dir),
        ]
    )
    assert exit_code == 2
    assert not baseline_dir.exists()
    assert "--write-baseline cannot be combined with --case" in capsys.readouterr().err


def test_write_baseline_refused_when_a_case_fails(tmp_path, scratch_module, capsys):
    from repro.bench.cli import main as cli_main

    stems, names = scratch_module
    stems.append("bench_e2e_failing")
    names.append("kernels.e2e_failing")
    path = tmp_path / "bench_e2e_failing.py"
    path.write_text(
        textwrap.dedent(
            """
            from repro.bench import benchmark_case

            @benchmark_case("kernels.e2e_failing", suite="kernels")
            def failing(ctx):
                raise RuntimeError("boom")
            """
        )
    )
    baseline_dir = tmp_path / "baselines"
    # No --case filter: the tmp benchmarks dir contains only the failing
    # case, so the whole-suite run is exactly that case.
    exit_code = cli_main(
        [
            "run",
            "--suite", "kernels",
            "--benchmarks-dir", str(tmp_path),
            "--output-dir", str(tmp_path / "out"),
            "--write-baseline",
            "--baseline-dir", str(baseline_dir),
        ]
    )
    assert exit_code == 1
    # The failed run must not clobber committed baselines; results are still
    # written for debugging.
    assert not baseline_dir.exists()
    assert (tmp_path / "out" / "BENCH_kernels.json").exists()
    assert "NOT refreshing baselines" in capsys.readouterr().err


def _bench_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_cli_smoke_run_and_gate_end_to_end(tmp_path):
    """The acceptance path: run --smoke, validate JSON, gate fresh-vs-fresh."""
    out_dir = tmp_path / "results"
    proc = _bench_cli(
        ["run", "--smoke", "--suite", "kernels", "--output-dir", str(out_dir)],
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    path = out_dir / "BENCH_kernels.json"
    raw = json.loads(path.read_text())
    assert raw["schema_version"] == 1
    restored = SuiteResult.load(path)
    assert restored.ok and restored.smoke
    case_names = {case.name for case in restored.cases}
    assert "kernels.adc_scores" in case_names
    assert restored.case("kernels.adc_scores").metric("adc_speedup_vs_naive_x").value > 0

    # A fresh run gated against itself always passes.
    gate = _bench_cli(
        ["gate", "--baseline", str(path), "--current", str(path)], cwd=REPO_ROOT
    )
    assert gate.returncode == 0, gate.stdout + gate.stderr
    assert "gate PASS" in gate.stdout

    # And the report command renders it.
    report = _bench_cli(
        ["report", "--results", str(out_dir), "--output", str(tmp_path / "r.md")],
        cwd=REPO_ROOT,
    )
    assert report.returncode == 0, report.stdout + report.stderr
    assert "kernels.adc_scores" in (tmp_path / "r.md").read_text()
