"""Registry registration, dedup and BenchContext behaviour."""

from __future__ import annotations

import pytest

from repro.bench import BenchContext, benchmark_case, get_case, run_case
from repro.bench.registry import cases, register, unregister, BenchCase


@pytest.fixture
def scratch_cases():
    """Track dummy registrations and always unregister them afterwards."""
    registered: list[str] = []

    def track(name: str) -> str:
        registered.append(name)
        return name

    yield track
    for name in registered:
        unregister(name)


def test_decorator_registers_and_runs(scratch_cases):
    name = scratch_cases("kernels.test_dummy_registers")

    @benchmark_case(name, suite="kernels", budget_s=5.0, smoke_budget_s=1.0)
    def dummy(ctx):
        ctx.set_params(n=ctx.pick(full=100, smoke=10))
        ctx.record("latency_ms", 1.5, unit="ms")
        ctx.emit("a line")

    case = get_case(name)
    assert case.suite == "kernels"
    assert case.budget(smoke=True) == 1.0
    assert case.budget(smoke=False) == 5.0

    result = run_case(name, smoke=True)
    assert result.ok
    assert result.params == {"n": 10}
    assert result.metric("latency_ms").value == 1.5
    assert result.text == "a line"
    assert result.budget_s == 1.0


def test_duplicate_name_from_different_function_raises(scratch_cases):
    name = scratch_cases("kernels.test_dummy_dup")

    @benchmark_case(name, suite="kernels")
    def first(ctx):
        pass

    # Re-registering the exact same function is idempotent (re-import path).
    register(
        BenchCase(name=name, suite="kernels", fn=first,
                  module=first.__module__, qualname=first.__qualname__)
    )

    with pytest.raises(ValueError, match="duplicate benchmark case name"):
        @benchmark_case(name, suite="kernels")
        def second(ctx):
            pass


def test_unknown_suite_rejected():
    with pytest.raises(ValueError, match="unknown suite"):
        @benchmark_case("bogus.case", suite="no-such-suite")
        def dummy(ctx):
            pass


def test_cases_filter_by_suite(scratch_cases):
    name = scratch_cases("quant.test_dummy_filter")

    @benchmark_case(name, suite="quant")
    def dummy(ctx):
        pass

    names = [case.name for case in cases("quant")]
    assert name in names
    assert all(case.suite == "quant" for case in cases("quant"))
    assert name not in [case.name for case in cases("kernels")]


def test_case_error_is_captured_not_raised(scratch_cases):
    name = scratch_cases("kernels.test_dummy_error")

    @benchmark_case(name, suite="kernels")
    def broken(ctx):
        ctx.record("partial", 1.0)
        raise RuntimeError("boom")

    result = run_case(name)
    assert not result.ok
    assert "RuntimeError: boom" in result.error
    # Metrics recorded before the failure are preserved for debugging.
    assert result.metric("partial").value == 1.0


def test_context_rejects_duplicate_metric():
    ctx = BenchContext()
    ctx.record("m", 1.0)
    with pytest.raises(ValueError, match="recorded twice"):
        ctx.record("m", 2.0)


def test_context_measure_returns_positive_time():
    ctx = BenchContext(smoke=True)
    per_call = ctx.measure(lambda: sum(range(100)), repeats=3, warmup=1)
    assert per_call > 0
