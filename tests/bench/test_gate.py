"""Gate tolerance logic: pass, regress, missing-baseline and new-metric cases."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench import CaseResult, Metric, SuiteResult
from repro.bench.cli import main as cli_main
from repro.bench.gate import (
    DEFAULT_TOLERANCE_PCT,
    Kind,
    compare_suites,
    has_failures,
    summarize,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_SERVING_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_serving.json"


def _suite(metrics: list[Metric], *, smoke: bool = True, error: str | None = None) -> SuiteResult:
    return SuiteResult(
        suite="serving",
        smoke=smoke,
        cases=[CaseResult(name="serving.case", suite="serving", metrics=metrics, error=error)],
    )


def _kinds(findings) -> list[Kind]:
    return [finding.kind for finding in findings]


def test_within_tolerance_passes():
    baseline = _suite([Metric("tpot_ms", 100.0, tolerance_pct=10.0)])
    current = _suite([Metric("tpot_ms", 105.0, tolerance_pct=10.0)])
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.PASS]
    assert not has_failures(findings)
    assert "PASS" in summarize(findings)


def test_lower_is_better_regression_beyond_tolerance_fails():
    baseline = _suite([Metric("tpot_ms", 100.0, tolerance_pct=10.0)])
    current = _suite([Metric("tpot_ms", 120.0, tolerance_pct=10.0)])
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.REGRESSION]
    assert has_failures(findings)
    assert "FAIL" in summarize(findings)


def test_higher_is_better_direction_is_respected():
    higher = Metric("speedup_x", 4.0, direction="higher_is_better", tolerance_pct=20.0)
    # Dropping 4.0 -> 3.0 is -25%, beyond the 20% allowance.
    findings = compare_suites(_suite([higher]), _suite([Metric(
        "speedup_x", 3.0, direction="higher_is_better", tolerance_pct=20.0)]))
    assert _kinds(findings) == [Kind.REGRESSION]
    # Rising 4.0 -> 6.0 is an improvement, never a failure.
    findings = compare_suites(_suite([higher]), _suite([Metric(
        "speedup_x", 6.0, direction="higher_is_better", tolerance_pct=20.0)]))
    assert _kinds(findings) == [Kind.IMPROVEMENT]
    assert not has_failures(findings)


def test_default_tolerance_applies_when_metric_has_none():
    baseline = _suite([Metric("tpot_ms", 100.0)])
    ok = _suite([Metric("tpot_ms", 100.0 + DEFAULT_TOLERANCE_PCT - 1.0)])
    bad = _suite([Metric("tpot_ms", 100.0 + DEFAULT_TOLERANCE_PCT + 1.0)])
    assert not has_failures(compare_suites(baseline, ok))
    assert has_failures(compare_suites(baseline, bad))
    # A stricter CLI-level default makes the same diff fail.
    assert has_failures(compare_suites(baseline, ok, default_tolerance_pct=5.0))


def test_missing_gated_metric_fails():
    baseline = _suite([Metric("tpot_ms", 100.0)])
    current = _suite([])
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.MISSING_METRIC]
    assert has_failures(findings)


def test_missing_ungated_metric_is_informational():
    baseline = _suite([Metric("wall_us", 100.0, gated=False)])
    findings = compare_suites(baseline, _suite([]))
    assert _kinds(findings) == [Kind.INFO]
    assert not has_failures(findings)


def test_missing_case_fails():
    baseline = _suite([Metric("tpot_ms", 100.0)])
    current = SuiteResult(suite="serving", smoke=True, cases=[])
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.MISSING_CASE]
    assert has_failures(findings)


def test_new_metric_and_new_case_are_informational():
    baseline = _suite([Metric("tpot_ms", 100.0)])
    current = _suite([Metric("tpot_ms", 100.0), Metric("extra", 1.0)])
    current.cases.append(CaseResult(name="serving.new_case", suite="serving"))
    findings = compare_suites(baseline, current)
    kinds = _kinds(findings)
    assert kinds.count(Kind.NEW_METRIC) == 2  # one new metric + one new case
    assert not has_failures(findings)


def test_ungated_metric_never_fails():
    baseline = _suite([Metric("wall_us", 100.0, gated=False, tolerance_pct=5.0)])
    current = _suite([Metric("wall_us", 500.0, gated=False, tolerance_pct=5.0)])
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.INFO]
    assert not has_failures(findings)


def test_errored_case_in_current_run_fails():
    baseline = _suite([Metric("tpot_ms", 100.0)])
    current = _suite([], error="RuntimeError: boom")
    findings = compare_suites(baseline, current)
    assert _kinds(findings) == [Kind.CASE_ERROR]
    assert has_failures(findings)


def test_smoke_mismatch_warns_but_does_not_fail():
    baseline = _suite([Metric("tpot_ms", 100.0)], smoke=True)
    current = _suite([Metric("tpot_ms", 100.0)], smoke=False)
    findings = compare_suites(baseline, current)
    assert Kind.WARNING in _kinds(findings)
    assert not has_failures(findings)


def test_zero_baseline_regression_still_detected():
    baseline = _suite([Metric("errors", 0.0, tolerance_pct=10.0)])
    current = _suite([Metric("errors", 3.0, tolerance_pct=10.0)])
    assert has_failures(compare_suites(baseline, current))
    same = _suite([Metric("errors", 0.0, tolerance_pct=10.0)])
    assert not has_failures(compare_suites(baseline, same))


# ---------------------------------------------------------------------------
# CLI-level acceptance check against the committed serving baseline
# ---------------------------------------------------------------------------


def test_gate_cli_passes_against_identical_serving_results(tmp_path, capsys):
    current = tmp_path / "BENCH_serving.json"
    current.write_text(COMMITTED_SERVING_BASELINE.read_text())
    exit_code = cli_main(
        ["gate", "--baseline", str(COMMITTED_SERVING_BASELINE), "--current", str(current)]
    )
    assert exit_code == 0
    assert "gate PASS" in capsys.readouterr().out


def test_gate_cli_fails_when_serving_metric_artificially_degraded(tmp_path, capsys):
    doc = json.loads(COMMITTED_SERVING_BASELINE.read_text())
    degraded = copy.deepcopy(doc)
    hit = False
    for case in degraded["cases"]:
        if case["name"] != "serving.prefix_sharing":
            continue
        for metric in case["metrics"]:
            if metric["name"] == "prefill_speedup_x":
                metric["value"] /= 4.0  # sharing win collapses far past tolerance
                hit = True
    assert hit, "committed serving baseline must contain prefix-sharing speedup"
    current = tmp_path / "BENCH_serving.json"
    current.write_text(json.dumps(degraded))
    exit_code = cli_main(
        ["gate", "--baseline", str(COMMITTED_SERVING_BASELINE), "--current", str(current)]
    )
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "prefill_speedup_x" in out
    assert "gate FAIL" in out


def test_gate_cli_missing_baseline_file_errors(tmp_path, capsys):
    exit_code = cli_main(["gate", "--baseline", str(tmp_path / "nope.json"),
                          "--current", str(COMMITTED_SERVING_BASELINE)])
    assert exit_code == 2
    assert "error" in capsys.readouterr().err


@pytest.mark.parametrize("missing_dir", ["empty"])
def test_gate_cli_empty_baseline_dir_errors(tmp_path, capsys, missing_dir):
    empty = tmp_path / missing_dir
    empty.mkdir()
    exit_code = cli_main(["gate", "--baseline", str(empty),
                          "--current", str(COMMITTED_SERVING_BASELINE)])
    assert exit_code == 2
    assert "no BENCH_*.json files" in capsys.readouterr().err
